package simnet

import "fmt"

// Topology extends the flat α–β model to the two-level machines the paper
// actually targets (multi-GPU nodes on Greina, Piz Daint's Dragonfly):
// ranks are grouped into nodes of RanksPerNode consecutive ranks, and a
// message is costed by the Intra profile when sender and receiver share a
// node and by the Inter profile otherwise. Intra-node links (NVLink, QPI,
// shared memory) are typically an order of magnitude cheaper in both α and
// β than the network, which is what makes two-level collective schemes
// (intra reduce → inter exchange among leaders → intra broadcast) win over
// the flat algorithms analyzed in §5.3.
type Topology struct {
	// RanksPerNode is the number of consecutive ranks placed on one node.
	// The last node may be smaller when the world size is not divisible.
	RanksPerNode int
	// Intra prices messages between ranks on the same node.
	Intra Profile
	// Inter prices messages between ranks on different nodes.
	Inter Profile
}

// Validate reports whether the topology is usable.
func (t Topology) Validate() error {
	if t.RanksPerNode < 1 {
		return fmt.Errorf("simnet: topology needs RanksPerNode >= 1, got %d", t.RanksPerNode)
	}
	if t.Intra.Name == "" || t.Inter.Name == "" {
		return fmt.Errorf("simnet: topology profiles must be named (intra=%q inter=%q)",
			t.Intra.Name, t.Inter.Name)
	}
	return nil
}

// NodeOf returns the node index hosting the given rank.
func (t Topology) NodeOf(rank int) int { return rank / t.RanksPerNode }

// SameNode reports whether two ranks share a node.
func (t Topology) SameNode(a, b int) bool { return t.NodeOf(a) == t.NodeOf(b) }

// ProfileFor returns the profile pricing a message from rank a to rank b.
func (t Topology) ProfileFor(a, b int) Profile {
	if t.SameNode(a, b) {
		return t.Intra
	}
	return t.Inter
}

// Leader returns the node-leader rank (the lowest rank on the node) for
// the given rank.
func (t Topology) Leader(rank int) int { return t.NodeOf(rank) * t.RanksPerNode }

// Nodes returns the number of nodes in a world of p ranks.
func (t Topology) Nodes(p int) int {
	return (p + t.RanksPerNode - 1) / t.RanksPerNode
}

// NodeRanks returns the world ranks hosted on the node of the given rank,
// in ascending order, for a world of p ranks.
func (t Topology) NodeRanks(rank, p int) []int {
	lo := t.Leader(rank)
	hi := lo + t.RanksPerNode
	if hi > p {
		hi = p
	}
	out := make([]int, 0, hi-lo)
	for r := lo; r < hi; r++ {
		out = append(out, r)
	}
	return out
}

// LeaderRanks returns the node-leader ranks of a world of p ranks, in
// ascending order.
func (t Topology) LeaderRanks(p int) []int {
	out := make([]int, 0, t.Nodes(p))
	for r := 0; r < p; r += t.RanksPerNode {
		out = append(out, r)
	}
	return out
}

// NVLinkLike models an intra-node GPU interconnect in the class of the
// paper's multi-GPU Greina nodes: sub-microsecond launch latency and
// ~25 GB/s effective per-link bandwidth — roughly 2× lower α and 4× higher
// bandwidth than Aries. Compute constants match the other profiles (the
// reduction runs on the same device either way).
var NVLinkLike = Profile{
	Name: "nvlink", Alpha: 6e-7, BetaPerByte: 4e-11,
	GammaPerElem: 2.5e-10, SparseComputeFactor: 4,
}
