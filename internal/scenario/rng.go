// Package scenario is the deterministic workload-generation subsystem: a
// declarative library of input scenarios (support shape, density and drift
// schedules, raggedness, per-layer profiles) generated from seed-isolated
// per-subsystem random streams, plus record/replay of the per-step,
// per-rank support/value traces a scenario emits.
//
// The determinism contract is the one the drift-gated BENCH documents
// rely on and the seed-isolation regression test pins: every random draw
// comes from a stream derived from (SimulationKey, stream name), where the
// name encodes the scenario, the subsystem (support sampling, value noise,
// drift, raggedness, batch sampling) and the rank. Because no two streams
// share state, adding a new scenario, a new subsystem, a new rank, or more
// calls never changes the byte stream any existing (scenario, subsystem,
// rank) tuple observes.
package scenario

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
)

// SimulationKey is the determinism key of one generation run: every random
// stream a generator consumes is derived from (key, stream name). Equal
// keys reproduce equal workloads byte for byte.
type SimulationKey uint64

// NewKey builds a SimulationKey from a user-facing seed. The seed is
// diffused (splitmix64 finalizer) so that adjacent seeds yield unrelated
// keys.
func NewKey(seed int64) SimulationKey {
	z := uint64(seed) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return SimulationKey(z ^ (z >> 31))
}

// Derive maps a stream name to the seed of that stream's generator:
// FNV-1a over the key bytes followed by the name. The mapping is stable
// across processes and releases — it is part of the trace/replay contract.
func (k SimulationKey) Derive(name string) int64 {
	h := fnv.New64a()
	var b [8]byte
	for i := range b {
		b[i] = byte(uint64(k) >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(name))
	return int64(h.Sum64())
}

// Subsystem names used by the scenario generator. Each subsystem draws
// from its own stream, so a scenario change that consumes more draws in
// one subsystem (say, a drift schedule adding raggedness) cannot perturb
// another subsystem's sequence.
const (
	// SubsystemSupport draws support indices (which coordinates are
	// non-zero).
	SubsystemSupport = "support"
	// SubsystemValues draws the values placed on the support.
	SubsystemValues = "values"
	// SubsystemDrift draws any stochastic part of a drift schedule.
	SubsystemDrift = "drift"
	// SubsystemRagged draws the per-rank non-zero-count jitter.
	SubsystemRagged = "ragged"
	// SubsystemBatch draws training minibatch indices (internal/train).
	SubsystemBatch = "batch"
	// SubsystemArrival draws per-job start-time jitter (internal/cluster).
	SubsystemArrival = "arrival"
	// SubsystemJitter draws per-step straggler stretch factors
	// (internal/cluster).
	SubsystemJitter = "jitter"
)

// PartitionedRNG hands out isolated, lazily-initialized random streams
// keyed by name. Streams are created under a lock, so concurrent ranks may
// request their streams in any order; each returned *rand.Rand is for a
// single goroutine, exactly like rand.New.
type PartitionedRNG struct {
	key     SimulationKey
	mu      sync.Mutex
	streams map[string]*rand.Rand
}

// NewPartitionedRNG returns a PartitionedRNG deriving every stream from
// the given key.
func NewPartitionedRNG(key SimulationKey) *PartitionedRNG {
	return &PartitionedRNG{key: key, streams: make(map[string]*rand.Rand)}
}

// Key returns the determinism key the streams derive from.
func (pr *PartitionedRNG) Key() SimulationKey { return pr.key }

// Named returns the stream of the given name, creating it on first use.
// The same name always returns the same stream instance; distinct names
// return streams with unrelated sequences.
func (pr *PartitionedRNG) Named(name string) *rand.Rand {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	if r, ok := pr.streams[name]; ok {
		return r
	}
	r := rand.New(rand.NewSource(pr.key.Derive(name)))
	pr.streams[name] = r
	return r
}

// Stream returns the per-rank stream of one subsystem — the common case,
// equivalent to Named(subsystem + "/rank" + rank).
func (pr *PartitionedRNG) Stream(subsystem string, rank int) *rand.Rand {
	return pr.Named(fmt.Sprintf("%s/rank%d", subsystem, rank))
}
