package scenario

import (
	"math"
	"testing"
)

func TestScheduleShapes(t *testing.T) {
	const calls = 36
	// Const holds everywhere.
	c := Const(0.04)
	if c.At(0, calls) != 0.04 || c.At(35, calls) != 0.04 {
		t.Fatal("Const schedule must hold its value")
	}
	// The zero Schedule is constant zero.
	var zero Schedule
	if zero.At(17, calls) != 0 {
		t.Fatal("zero Schedule must evaluate to 0")
	}
	// Linear with an explicit window: flat before, flat after, interpolated
	// inside.
	l := Linear(0.9, 0.05, 23, 27)
	if l.At(0, calls) != 0.9 || l.At(23, calls) != 0.9 {
		t.Fatal("Linear must hold From through Start")
	}
	if l.At(27, calls) != 0.05 || l.At(33, calls) != 0.05 {
		t.Fatal("Linear must hold To from End on")
	}
	mid := l.At(25, calls)
	if math.Abs(mid-(0.9+(0.05-0.9)*0.5)) > 1e-12 {
		t.Fatalf("Linear midpoint %g", mid)
	}
	// A zero window spreads over the whole run.
	whole := Linear(0, 1, 0, 0)
	if got := whole.At(calls-1, calls); got != 1 {
		t.Fatalf("whole-run Linear must reach To at the last call, got %g", got)
	}
	// Geom interpolates with a constant per-call ratio.
	g := Geom(0.025, 0.05, 0, 35)
	if g.At(0, calls) != 0.025 || g.At(35, calls) != 0.05 {
		t.Fatal("Geom endpoints")
	}
	r1 := g.At(11, calls) / g.At(10, calls)
	r2 := g.At(21, calls) / g.At(20, calls)
	if math.Abs(r1-r2) > 1e-12 {
		t.Fatalf("Geom per-call ratio must be constant: %g vs %g", r1, r2)
	}
}

func TestScenarioValidate(t *testing.T) {
	base := Scenario{Name: "v", N: 100, P: 2, Calls: 1, Density: Const(0.1)}
	if err := base.Validate(); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
	for name, mut := range map[string]func(*Scenario){
		"empty name":     func(s *Scenario) { s.Name = "" },
		"zero N":         func(s *Scenario) { s.N = 0 },
		"zero P":         func(s *Scenario) { s.P = 0 },
		"zero calls":     func(s *Scenario) { s.Calls = 0 },
		"ragged >= 1":    func(s *Scenario) { s.Ragged = 1 },
		"zipf <= 1":      func(s *Scenario) { s.ZipfS = 0.5 },
		"block overflow": func(s *Scenario) { s.Blocks = []Block{{Start: 0.9, Frac: 0.2, Weight: 1}} },
		"block weight":   func(s *Scenario) { s.Blocks = []Block{{Start: 0, Frac: 0.1, Weight: 0}} },
		"layer frac":     func(s *Scenario) { s.Layers = []Layer{{Frac: 1.5, DensityScale: 1}} },
		"layer sum":      func(s *Scenario) { s.Layers = []Layer{{Frac: 0.8, DensityScale: 1}, {Frac: 0.8, DensityScale: 1}} },
	} {
		sc := base
		mut(&sc)
		if err := sc.Validate(); err == nil {
			t.Errorf("%s: expected a validation error", name)
		}
	}
}

func TestGeneratorDeterminismAndShape(t *testing.T) {
	for _, sc := range Library() {
		// Shrink the BENCH-sized cells so the whole library stays fast.
		if sc.N > 1<<16 {
			sc.N, sc.P = 1<<14, 8
		}
		key := NewKey(11)
		a := sc.Generator(key).All()
		b := sc.Generator(key).All()
		if len(a) != sc.Calls {
			t.Fatalf("%s: generated %d calls, want %d", sc.Name, len(a), sc.Calls)
		}
		for c := range a {
			if len(a[c]) != sc.P {
				t.Fatalf("%s call %d: %d ranks, want %d", sc.Name, c, len(a[c]), sc.P)
			}
			for r := range a[c] {
				if !a[c][r].Equal(b[c][r]) {
					t.Fatalf("%s call %d rank %d: regeneration under the same key diverged", sc.Name, c, r)
				}
				if a[c][r].Dim() != sc.N {
					t.Fatalf("%s: wrong dimension %d", sc.Name, a[c][r].Dim())
				}
				if a[c][r].NNZ() == 0 {
					t.Fatalf("%s call %d rank %d: empty support", sc.Name, c, r)
				}
			}
		}
	}
}

func TestGeneratorDensityTracksSchedule(t *testing.T) {
	sc := Scenario{
		Name: "dens", N: 1 << 14, P: 2, Calls: 10,
		Density: Linear(0.01, 0.05, 0, 9),
	}
	g := sc.Generator(NewKey(1))
	for c := 0; c < sc.Calls; c++ {
		vs := g.Next()
		want := clampK(int(math.Round(sc.Density.At(c, sc.Calls)*float64(sc.N))), sc.N)
		for r, v := range vs {
			if v.NNZ() != want {
				t.Fatalf("call %d rank %d: k=%d, want %d", c, r, v.NNZ(), want)
			}
		}
	}
	if g.Next() != nil {
		t.Fatal("exhausted generator must return nil")
	}
}

func TestGeneratorHotBlocksConcentrate(t *testing.T) {
	sc := Scenario{
		Name: "conc", N: 1 << 14, P: 4, Calls: 4,
		Density: Const(0.02),
		Blocks:  []Block{{Start: 0.25, Frac: 0.05, Weight: 1}},
		HotMass: Const(0.9),
	}
	lo, hi := int32(0.25*float64(sc.N)), int32(0.30*float64(sc.N))
	g := sc.Generator(NewKey(2))
	in, total := 0, 0
	for vs := g.Next(); vs != nil; vs = g.Next() {
		for _, v := range vs {
			idx, _ := v.Pairs()
			for _, ix := range idx {
				if ix >= lo && ix < hi {
					in++
				}
				total++
			}
		}
	}
	frac := float64(in) / float64(total)
	// 90% of draws target the block; collisions inside the tiny block trim
	// the realized share a little.
	if frac < 0.7 {
		t.Fatalf("hot block holds %.2f of the support, want >= 0.7", frac)
	}
}

func TestGeneratorRaggedSpreadsK(t *testing.T) {
	sc := Scenario{
		Name: "rag", N: 1 << 14, P: 16, Calls: 2,
		Density: Const(0.02),
		Ragged:  0.5,
	}
	vs := sc.Generator(NewKey(3)).Next()
	minK, maxK := sc.N, 0
	for _, v := range vs {
		if v.NNZ() < minK {
			minK = v.NNZ()
		}
		if v.NNZ() > maxK {
			maxK = v.NNZ()
		}
	}
	if minK == maxK {
		t.Fatalf("ragged scenario produced identical k=%d on all %d ranks", minK, sc.P)
	}
	base := 0.02 * float64(sc.N)
	if float64(minK) < base*0.45 || float64(maxK) > base*1.55 {
		t.Fatalf("ragged k range [%d, %d] outside +-50%% of %g", minK, maxK, base)
	}
}

func TestGeneratorLayersPartitionSpace(t *testing.T) {
	sc, err := ByName("transformer")
	if err != nil {
		t.Fatal(err)
	}
	vs := sc.Generator(NewKey(4)).Next()
	// Embedding layer (first quarter, density scale 4) must run hotter
	// than the attention trunk (next 35%, scale 0.5).
	embEnd := int32(0.25 * float64(sc.N))
	attEnd := int32(0.60 * float64(sc.N))
	emb, att := 0, 0
	for _, v := range vs {
		idx, _ := v.Pairs()
		for _, ix := range idx {
			switch {
			case ix < embEnd:
				emb++
			case ix < attEnd:
				att++
			}
		}
	}
	embDens := float64(emb) / (0.25 * float64(sc.N) * float64(sc.P))
	attDens := float64(att) / (0.35 * float64(sc.N) * float64(sc.P))
	if embDens < 3*attDens {
		t.Fatalf("embedding density %.4f not clearly above attention %.4f", embDens, attDens)
	}
}

func TestGeneratorZipfSkews(t *testing.T) {
	sc, err := ByName("zipf")
	if err != nil {
		t.Fatal(err)
	}
	sc.N, sc.P = 1<<14, 4
	g := sc.Generator(NewKey(6))
	low, total := 0, 0
	cut := int32(sc.N / 8)
	for vs := g.Next(); vs != nil; vs = g.Next() {
		for _, v := range vs {
			idx, _ := v.Pairs()
			for _, ix := range idx {
				if ix < cut {
					low++
				}
				total++
			}
		}
	}
	if frac := float64(low) / float64(total); frac < 0.5 {
		t.Fatalf("Zipf support puts only %.2f of draws in the first eighth; want heavy head", frac)
	}
}

func TestLatticeValuesAreExactAndNonZero(t *testing.T) {
	sc := Scenario{Name: "lat", N: 1 << 12, P: 4, Calls: 2, Density: Const(0.05)}
	g := sc.Generator(NewKey(7))
	for vs := g.Next(); vs != nil; vs = g.Next() {
		for _, v := range vs {
			_, val := v.Pairs()
			for _, x := range val {
				if x == 0 {
					t.Fatal("lattice values must never be zero (NewSparse would drop them)")
				}
				if scaled := x * 16; scaled != math.Trunc(scaled) || math.Mod(scaled, 2) == 0 {
					t.Fatalf("value %g is not an odd multiple of 1/16", x)
				}
			}
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("no-such-scenario"); err == nil {
		t.Fatal("unknown scenario must error")
	}
	if len(Library()) != len(Names()) || len(Names()) == 0 {
		t.Fatal("library listing inconsistent")
	}
}
