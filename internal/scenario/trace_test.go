package scenario

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// smallTrace is a compact scenario used by the codec tests: multi-modal,
// ragged, and small enough that its encoded form stays a few kilobytes.
var smallTrace = Scenario{
	Name: "trace-small", N: 1 << 12, P: 4, Calls: 3,
	Density: Const(0.01),
	Blocks:  []Block{{Start: 0.25, Frac: 0.1, Weight: 1}},
	HotMass: Const(0.7),
	Ragged:  0.25,
}

func TestTraceRoundTrip(t *testing.T) {
	key := NewKey(99)
	tr := Record(smallTrace, key)
	buf := tr.Encode()
	got, err := Decode(buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Name != tr.Name || got.Key != tr.Key || got.N != tr.N || got.P != tr.P {
		t.Fatalf("header mismatch: %+v vs %+v", got, tr)
	}
	if len(got.Steps) != len(tr.Steps) {
		t.Fatalf("step count %d, want %d", len(got.Steps), len(tr.Steps))
	}
	for c := range tr.Steps {
		for r := range tr.Steps[c] {
			a, b := tr.Steps[c][r], got.Steps[c][r]
			if !a.Equal(b) {
				t.Fatalf("step %d rank %d: decoded vector differs", c, r)
			}
			// Field-exact: the replayed vector must also charge identical
			// wire bytes (the quantity the cost model prices).
			if a.WireBytes() != b.WireBytes() || a.Delta() != b.Delta() {
				t.Fatalf("step %d rank %d: decoded vector not field-exact", c, r)
			}
		}
	}
	// The encoding is canonical: re-encoding the decoded trace reproduces
	// the bytes exactly.
	if !bytes.Equal(got.Encode(), buf) {
		t.Fatal("re-encoded trace differs from the original bytes")
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	key := NewKey(100)
	tr := Record(smallTrace, key)
	path := filepath.Join(t.TempDir(), "t.trace")
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Encode(), tr.Encode()) {
		t.Fatal("file round trip changed the trace")
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.trace")); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestTraceDecodeRejectsCorruption(t *testing.T) {
	valid := Record(smallTrace, NewKey(7)).Encode()

	t.Run("truncated", func(t *testing.T) {
		// Every proper prefix must error, never panic.
		for _, cut := range []int{0, 1, 7, 8, 9, 13, 20, len(valid) / 2, len(valid) - 1} {
			if _, err := Decode(valid[:cut]); err == nil {
				t.Errorf("truncation to %d bytes decoded successfully", cut)
			}
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		buf := append([]byte(nil), valid...)
		buf[0] ^= 0xff
		if _, err := Decode(buf); err == nil {
			t.Error("corrupt magic accepted")
		}
	})
	t.Run("bad version", func(t *testing.T) {
		buf := append([]byte(nil), valid...)
		buf[8] = 0xee
		if _, err := Decode(buf); err == nil {
			t.Error("unknown version accepted")
		}
	})
	t.Run("flipped body byte", func(t *testing.T) {
		// CRC must catch a flip anywhere in the body.
		for _, pos := range []int{10, 30, len(valid) / 2, len(valid) - 5} {
			buf := append([]byte(nil), valid...)
			buf[pos] ^= 0x01
			if _, err := Decode(buf); err == nil {
				t.Errorf("flip at %d accepted", pos)
			}
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		if _, err := Decode(append(append([]byte(nil), valid...), 0, 0, 0, 0)); err == nil {
			t.Error("trailing bytes accepted")
		}
	})
}

// TestGoldenTrace pins the committed trace file: decoding it must succeed
// and regenerating its scenario under its recorded key must reproduce the
// committed bytes exactly. This is the cross-release record/replay
// contract — if the generator or the codec drifts, this fails before any
// BENCH document silently moves. Regenerate with -update.
func TestGoldenTrace(t *testing.T) {
	const path = "testdata/trace-small.trace"
	key := NewKey(701)
	fresh := Record(smallTrace, key).Encode()
	if *updateGolden {
		if err := os.WriteFile(path, fresh, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(fresh))
		return
	}
	committed, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden trace (regenerate with -update): %v", err)
	}
	if _, err := Decode(committed); err != nil {
		t.Fatalf("committed trace no longer decodes: %v", err)
	}
	if !bytes.Equal(committed, fresh) {
		t.Fatal("regenerating the golden trace produced different bytes — generator or codec drifted")
	}
}

func FuzzDecodeTrace(f *testing.F) {
	f.Add(Record(smallTrace, NewKey(1)).Encode())
	tiny := Scenario{Name: "t", N: 64, P: 2, Calls: 1, Density: Const(0.05)}
	f.Add(Record(tiny, NewKey(2)).Encode())
	f.Add([]byte(traceMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Decode(data) // must never panic
		if err != nil {
			return
		}
		// Anything that decodes must re-encode to the identical bytes —
		// the format is canonical, so decode ∘ encode is the identity.
		if !bytes.Equal(tr.Encode(), data) {
			t.Fatalf("decoded trace re-encodes differently (%d bytes in)", len(data))
		}
	})
}
