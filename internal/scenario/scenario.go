package scenario

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/stream"
)

// ScheduleKind selects how a Schedule interpolates between From and To.
type ScheduleKind int

const (
	// SchedConst holds From for the whole run.
	SchedConst ScheduleKind = iota
	// SchedLinear interpolates linearly across the transition window.
	SchedLinear
	// SchedGeom interpolates geometrically (constant ratio per call)
	// across the transition window — the natural shape for density ramps.
	SchedGeom
)

// Schedule is a declarative per-call scalar: a value that holds at From
// until call Start, transitions to To by call End (linearly or
// geometrically), and holds at To afterwards. A zero window (End ≤ Start)
// spreads the transition over the whole run. The zero Schedule is constant
// zero; Const(v) is the common stationary case.
type Schedule struct {
	// Kind selects the interpolation.
	Kind ScheduleKind
	// From and To are the values before and after the transition.
	From, To float64
	// Start and End delimit the transition window in calls.
	Start, End int
}

// Const returns the stationary schedule fixed at v.
func Const(v float64) Schedule { return Schedule{Kind: SchedConst, From: v, To: v} }

// Linear returns a schedule moving linearly from `from` to `to` over calls
// [start, end].
func Linear(from, to float64, start, end int) Schedule {
	return Schedule{Kind: SchedLinear, From: from, To: to, Start: start, End: end}
}

// Geom returns a schedule moving geometrically from `from` to `to` over
// calls [start, end]. Both endpoints must be positive.
func Geom(from, to float64, start, end int) Schedule {
	return Schedule{Kind: SchedGeom, From: from, To: to, Start: start, End: end}
}

// At evaluates the schedule at call c of a run of the given length.
func (s Schedule) At(c, calls int) float64 {
	if s.Kind == SchedConst {
		return s.From
	}
	start, end := s.Start, s.End
	if end <= start {
		start, end = 0, calls-1
	}
	if c <= start || end == start {
		return s.From
	}
	if c >= end {
		return s.To
	}
	t := float64(c-start) / float64(end-start)
	if s.Kind == SchedGeom {
		return s.From * math.Pow(s.To/s.From, t)
	}
	return s.From + (s.To-s.From)*t
}

// Block is one hot region of the support distribution: a contiguous span
// of Frac·span coordinates starting at Start·span that attracts a share
// Weight of the scheduled hot mass. Multiple blocks form a multi-modal hot
// set — the structure of real gradient supports, where several regions
// (embedding rows, output layers) each absorb a chunk of the mass.
type Block struct {
	// Start is the block's offset as a fraction of the span it lives in.
	Start float64
	// Frac is the block's width as a fraction of the span.
	Frac float64
	// Weight is the block's share of the hot mass, normalized over the
	// block set.
	Weight float64
}

// ValueSpec selects the value-noise distribution.
type ValueSpec int

const (
	// ValuesLattice draws dyadic rationals (odd multiples of 1/16, never
	// zero), so floating-point accumulation across any rank count is exact
	// and results can be compared bit for bit — the default.
	ValuesLattice ValueSpec = iota
	// ValuesNormal draws standard normal values, the §8.1 synthetic
	// micro-benchmark workload.
	ValuesNormal
)

// Layer is one span of a per-layer shape profile (transformer/LSTM):
// a fraction of the dimension space with its own density scale and its
// own hot blocks, generated from its own random streams so editing one
// layer's shape never perturbs another's.
type Layer struct {
	// Name labels the layer (for documentation and stream naming only the
	// index matters).
	Name string
	// Frac is the layer's share of the dimension space. The last layer
	// absorbs any rounding remainder.
	Frac float64
	// DensityScale multiplies the scenario's scheduled density inside
	// this layer (embedding/output layers of real models run far hotter
	// than convolutional trunks).
	DensityScale float64
	// Blocks are the layer-local hot regions (Start/Frac relative to the
	// layer span).
	Blocks []Block
}

// Scenario declares one workload: P ranks each contributing a sparse
// vector of dimension N per call, for Calls calls, with the support shape,
// density schedule, raggedness and value noise given by the fields.
// Scenarios are plain data; Generator turns one into a deterministic
// input-schedule generator for a given SimulationKey.
type Scenario struct {
	// Name identifies the scenario and namespaces all of its random
	// streams: two scenarios with different names draw from unrelated
	// streams even under the same key.
	Name string
	// N is the vector dimension and P the rank count.
	N, P int
	// Calls is the number of collective calls in the schedule.
	Calls int
	// Density schedules the per-rank support density d(c); each rank
	// contributes k = round(d(c)·N) non-zeros at call c (before
	// raggedness).
	Density Schedule
	// Blocks are the hot regions of the support distribution; empty means
	// uniform (or Zipf, see ZipfS) support.
	Blocks []Block
	// HotMass schedules the total probability mass the hot blocks absorb
	// at call c (split across blocks by Weight). The remaining mass draws
	// uniformly over the whole span, hot regions included — exactly the
	// mixture density.ExpectedKBlocks prices.
	HotMass Schedule
	// ZipfS, when > 1, draws the non-hot support from a Zipf distribution
	// with exponent ZipfS over the span instead of uniformly — the
	// heavy-tailed supports of embedding-style gradients.
	ZipfS float64
	// Ragged jitters the per-rank non-zero count: each (call, rank) draws
	// a multiplier uniform in [1−Ragged, 1+Ragged] from the raggedness
	// subsystem. Zero consumes no raggedness draws at all.
	Ragged float64
	// Values selects the value-noise distribution.
	Values ValueSpec
	// Layers, when non-empty, partitions the dimension space into
	// per-layer spans each generated with its own density scale and hot
	// blocks — per-layer shape profiles drawn from transformer/LSTM
	// architectures. Density then schedules the base density the layer
	// scales multiply.
	Layers []Layer
}

// Validate checks the declaration is generable.
func (sc Scenario) Validate() error {
	if sc.Name == "" {
		return fmt.Errorf("scenario: empty name")
	}
	if sc.N <= 0 || sc.P <= 0 || sc.Calls <= 0 {
		return fmt.Errorf("scenario %s: N, P, Calls must be positive (got %d, %d, %d)", sc.Name, sc.N, sc.P, sc.Calls)
	}
	if sc.Ragged < 0 || sc.Ragged >= 1 {
		return fmt.Errorf("scenario %s: Ragged must be in [0, 1)", sc.Name)
	}
	if sc.ZipfS != 0 && sc.ZipfS <= 1 {
		return fmt.Errorf("scenario %s: ZipfS must be > 1 when set", sc.Name)
	}
	if err := validateBlocks(sc.Name, sc.Blocks); err != nil {
		return err
	}
	total := 0.0
	for i, l := range sc.Layers {
		if l.Frac <= 0 || l.Frac > 1 {
			return fmt.Errorf("scenario %s: layer %d Frac out of (0, 1]", sc.Name, i)
		}
		if l.DensityScale < 0 {
			return fmt.Errorf("scenario %s: layer %d negative DensityScale", sc.Name, i)
		}
		if err := validateBlocks(sc.Name, l.Blocks); err != nil {
			return err
		}
		total += l.Frac
	}
	if len(sc.Layers) > 0 && (total <= 0 || total > 1+1e-9) {
		return fmt.Errorf("scenario %s: layer fractions sum to %g, want (0, 1]", sc.Name, total)
	}
	return nil
}

func validateBlocks(name string, blocks []Block) error {
	for i, b := range blocks {
		if b.Start < 0 || b.Frac <= 0 || b.Start+b.Frac > 1+1e-9 {
			return fmt.Errorf("scenario %s: block %d [%g, %g) outside the span", name, i, b.Start, b.Start+b.Frac)
		}
		if b.Weight <= 0 {
			return fmt.Errorf("scenario %s: block %d non-positive weight", name, i)
		}
	}
	return nil
}

// Gen generates a scenario's input schedule call by call. Calls to Next
// must be sequential — the per-rank streams advance with each call — and a
// Gen belongs to one goroutine.
type Gen struct {
	sc   Scenario
	prng *PartitionedRNG
	next int
	zipf map[string]*rand.Zipf
}

// LayerSpans returns each layer's coordinate range [lo, hi) over [0, N),
// mirroring exactly the partition the generator samples supports from:
// layer i takes Round(Frac·N) coordinates starting where layer i−1 ended,
// with the last layer absorbing the remainder. A layer whose fraction
// rounds to zero width gets an empty span at its offset. Scenarios without
// layer profiles return nil. This is the span list bucket-fusion
// schedulers (core.NewBucketScheduler) consume, so bucket boundaries
// derived from a scenario are replica-consistent by construction.
func (sc Scenario) LayerSpans() [][2]int {
	if len(sc.Layers) == 0 {
		return nil
	}
	spans := make([][2]int, len(sc.Layers))
	off := 0
	for li, l := range sc.Layers {
		span := int(math.Round(l.Frac * float64(sc.N)))
		if li == len(sc.Layers)-1 {
			span = sc.N - off
		}
		if span <= 0 {
			spans[li] = [2]int{off, off}
			continue
		}
		spans[li] = [2]int{off, off + span}
		off += span
	}
	return spans
}

// Generator binds a scenario to a determinism key. It panics on an
// invalid declaration (scenarios are static data; an invalid one is a
// programming error).
func (sc Scenario) Generator(key SimulationKey) *Gen {
	if err := sc.Validate(); err != nil {
		panic(err)
	}
	return &Gen{sc: sc, prng: NewPartitionedRNG(key), zipf: make(map[string]*rand.Zipf)}
}

// Scenario returns the bound declaration.
func (g *Gen) Scenario() Scenario { return g.sc }

// Remaining returns how many calls the generator has left.
func (g *Gen) Remaining() int { return g.sc.Calls - g.next }

// Next generates the P per-rank vectors of the next call, or nil when the
// schedule is exhausted.
func (g *Gen) Next() []*stream.Vector {
	if g.next >= g.sc.Calls {
		return nil
	}
	c := g.next
	g.next++
	out := make([]*stream.Vector, g.sc.P)
	for r := range out {
		out[r] = g.rankVector(c, r)
	}
	return out
}

// All generates the entire schedule: Calls × P vectors.
func (g *Gen) All() [][]*stream.Vector {
	sched := make([][]*stream.Vector, 0, g.Remaining())
	for vs := g.Next(); vs != nil; vs = g.Next() {
		sched = append(sched, vs)
	}
	return sched
}

// rankVector builds rank r's contribution at call c.
func (g *Gen) rankVector(c, r int) *stream.Vector {
	sc := g.sc
	d := sc.Density.At(c, sc.Calls)
	k := scaledK(d, sc.N)
	if sc.Ragged > 0 {
		u := 2*g.stream(SubsystemRagged, "", r).Float64() - 1
		k = clampK(int(math.Round(float64(k)*(1+sc.Ragged*u))), sc.N)
	}

	if len(sc.Layers) == 0 {
		idx := g.sampleSupport(c, r, "", 0, sc.N, k, sc.Blocks)
		return stream.NewSparse(sc.N, idx, g.sampleValues("", r, len(idx)), stream.OpSum)
	}

	var idx []int32
	var val []float64
	off := 0
	for li, l := range sc.Layers {
		span := int(math.Round(l.Frac * float64(sc.N)))
		if li == len(sc.Layers)-1 {
			span = sc.N - off
		}
		if span <= 0 {
			continue
		}
		lk := scaledK(d*l.DensityScale, span)
		if l.DensityScale == 0 {
			lk = 0
		}
		ns := fmt.Sprintf("layer%d", li)
		lidx := g.sampleSupport(c, r, ns, off, span, lk, l.Blocks)
		idx = append(idx, lidx...)
		val = append(val, g.sampleValues(ns, r, len(lidx))...)
		off += span
	}
	return stream.NewSparse(sc.N, idx, val, stream.OpSum)
}

// scaledK converts a density into a per-rank non-zero count, at least 1.
func scaledK(d float64, span int) int {
	return clampK(int(math.Round(d*float64(span))), span)
}

func clampK(k, span int) int {
	if k < 1 {
		k = 1
	}
	if k > span {
		k = span
	}
	return k
}

// stream returns the per-(subsystem, namespace, rank) stream. The stream
// name embeds the scenario name, so scenarios never share streams.
func (g *Gen) stream(subsystem, namespace string, rank int) *rand.Rand {
	if namespace != "" {
		subsystem = subsystem + "/" + namespace
	}
	return g.prng.Named(fmt.Sprintf("%s/%s/rank%d", g.sc.Name, subsystem, rank))
}

// sampleSupport draws k distinct support indices for one rank within a
// span of the dimension space, offset into the full space. Each draw lands
// in a hot block with the scheduled probability (split across blocks by
// weight) and otherwise uniformly — or Zipf-distributed — over the whole
// span. Collisions retry; a pathological streak (a saturated hot block)
// falls back to a deterministic linear probe so generation always
// terminates.
func (g *Gen) sampleSupport(c, r int, namespace string, off, span, k int, blocks []Block) []int32 {
	if k <= 0 {
		return nil
	}
	if k > span {
		k = span
	}
	rng := g.stream(SubsystemSupport, namespace, r)
	hotMass := 0.0
	if len(blocks) > 0 {
		hotMass = g.sc.HotMass.At(c, g.sc.Calls)
	}
	totalW := 0.0
	for _, b := range blocks {
		totalW += b.Weight
	}

	seen := make(map[int32]struct{}, k)
	idx := make([]int32, 0, k)
	attempts := 0
	maxAttempts := 40*k + 64
	for len(idx) < k {
		var ix int32
		if attempts >= maxAttempts {
			// Deterministic fallback: linear-probe the span for a free
			// slot, so a nearly-saturated hot block cannot spin forever.
			ix = int32(len(idx) % span)
			for {
				if _, dup := seen[ix]; !dup {
					break
				}
				ix = (ix + 1) % int32(span)
			}
		} else {
			attempts++
			if hotMass > 0 && rng.Float64() < hotMass {
				b := pickBlock(rng, blocks, totalW)
				w := int(math.Ceil(b.Frac * float64(span)))
				if w > span {
					w = span
				}
				ix = int32(math.Floor(b.Start*float64(span))) + int32(rng.Intn(w))
				if int(ix) >= span {
					ix = int32(span - 1)
				}
			} else if g.sc.ZipfS > 1 {
				ix = int32(g.zipfFor(namespace, r, rng, span).Uint64())
			} else {
				ix = int32(rng.Intn(span))
			}
			if _, dup := seen[ix]; dup {
				continue
			}
		}
		seen[ix] = struct{}{}
		idx = append(idx, ix+int32(off))
	}
	return idx
}

// pickBlock selects a hot block proportionally to weight.
func pickBlock(rng *rand.Rand, blocks []Block, totalW float64) Block {
	if len(blocks) == 1 {
		return blocks[0]
	}
	u := rng.Float64() * totalW
	for _, b := range blocks {
		if u < b.Weight {
			return b
		}
		u -= b.Weight
	}
	return blocks[len(blocks)-1]
}

// zipfFor returns the per-(namespace, rank) Zipf sampler, created lazily
// on the rank's support stream.
func (g *Gen) zipfFor(namespace string, r int, rng *rand.Rand, span int) *rand.Zipf {
	name := fmt.Sprintf("%s/rank%d", namespace, r)
	if z, ok := g.zipf[name]; ok {
		return z
	}
	z := rand.NewZipf(rng, g.sc.ZipfS, 1, uint64(span-1))
	g.zipf[name] = z
	return z
}

// sampleValues draws k values from the rank's value-noise stream.
func (g *Gen) sampleValues(namespace string, r, k int) []float64 {
	rng := g.stream(SubsystemValues, namespace, r)
	val := make([]float64, k)
	switch g.sc.Values {
	case ValuesNormal:
		for i := range val {
			val[i] = rng.NormFloat64()
		}
	default: // ValuesLattice
		for i := range val {
			val[i] = float64(2*rng.Intn(64)-63) / 16
		}
	}
	return val
}
