package scenario

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"sort"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files (testdata/digests.json)")

// digestCalls caps how many calls a digest covers, keeping the BENCH-sized
// cells fast while still hashing every rank's full byte stream.
const digestCalls = 2

// digestScenario hashes the wire bytes of a scenario's first calls: any
// change to any rank's support or values anywhere in the prefix changes
// the digest.
func digestScenario(sc Scenario, key SimulationKey) string {
	g := sc.Generator(key)
	h := fnv.New64a()
	var buf []byte
	for c := 0; c < digestCalls && c < sc.Calls; c++ {
		for _, v := range g.Next() {
			buf = v.AppendWire(buf[:0])
			h.Write(buf)
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// TestSeedIsolationAddingScenario is the PartitionedRNG contract's
// regression test: generate every library scenario, then regenerate each
// one while a brand-new scenario (and every other library scenario, in
// reverse order) is generated around it — every pre-existing scenario's
// byte stream must be unchanged. Streams derive from (key, name), never
// from creation order, so a library addition cannot perturb committed
// documents.
func TestSeedIsolationAddingScenario(t *testing.T) {
	key := NewKey(701)
	baseline := map[string]string{}
	for _, sc := range Library() {
		baseline[sc.Name] = digestScenario(sc, key)
	}

	// The "new scenario" a future PR might add.
	added := Scenario{
		Name: "brand-new", N: 1 << 15, P: 8, Calls: 4,
		Density: Const(0.03),
		Blocks:  []Block{{Start: 0.5, Frac: 0.1, Weight: 1}},
		HotMass: Const(0.6),
		Ragged:  0.3,
	}
	// Interleave: drive the new scenario and the library in reverse order,
	// alternating call by call with the scenario under test.
	names := Names()
	sort.Sort(sort.Reverse(sort.StringSlice(names)))
	for _, name := range names {
		sc := library[name]
		inter := added.Generator(key)
		g := sc.Generator(key)
		h := fnv.New64a()
		var buf []byte
		for c := 0; c < digestCalls && c < sc.Calls; c++ {
			inter.Next() // a foreign scenario generating mid-flight
			for _, v := range g.Next() {
				buf = v.AppendWire(buf[:0])
				h.Write(buf)
			}
		}
		if got := fmt.Sprintf("%016x", h.Sum64()); got != baseline[name] {
			t.Errorf("scenario %s: byte stream changed when another scenario generated alongside (%s -> %s)", name, baseline[name], got)
		}
	}
}

// TestPartitionedRNGStreamIndependence pins the property underneath:
// a named stream's sequence depends only on (key, name), not on which
// other streams exist or when they drew.
func TestPartitionedRNGStreamIndependence(t *testing.T) {
	key := NewKey(17)
	seq := func(order []string, want string) []float64 {
		pr := NewPartitionedRNG(key)
		var out []float64
		for _, name := range order {
			r := pr.Named(name)
			for i := 0; i < 50; i++ {
				x := r.Float64()
				if name == want {
					out = append(out, x)
				}
			}
		}
		return out
	}
	a1 := seq([]string{"a", "b", "c"}, "a")
	a2 := seq([]string{"c", "b", "a"}, "a")
	a3 := seq([]string{"a"}, "a")
	for i := range a1 {
		if a1[i] != a2[i] || a1[i] != a3[i] {
			t.Fatalf("stream 'a' diverged across creation orders at draw %d", i)
		}
	}
	// Distinct names give unrelated sequences (first draws differ).
	pr := NewPartitionedRNG(key)
	if pr.Named("a").Float64() == pr.Named("b").Float64() {
		t.Fatal("distinct streams produced identical first draws")
	}
	// Stream, the per-rank helper, is Named with the canonical name.
	pr2 := NewPartitionedRNG(key)
	x := pr2.Stream(SubsystemSupport, 3).Float64()
	pr3 := NewPartitionedRNG(key)
	if y := pr3.Named("support/rank3").Float64(); x != y {
		t.Fatalf("Stream and Named disagree: %g vs %g", x, y)
	}
}

// TestSeedIsolationRankExtension: growing the world must leave the
// original ranks' streams untouched — rank r's bytes at P=8 equal rank
// r's bytes at P=4.
func TestSeedIsolationRankExtension(t *testing.T) {
	base := Scenario{
		Name: "extend", N: 1 << 14, P: 4, Calls: 3,
		Density: Const(0.03),
		Blocks:  []Block{{Start: 0, Frac: 0.1, Weight: 1}},
		HotMass: Const(0.7),
		Ragged:  0.2,
	}
	wide := base
	wide.P = 8
	key := NewKey(23)
	small := base.Generator(key).All()
	big := wide.Generator(key).All()
	for c := range small {
		for r := 0; r < base.P; r++ {
			if !small[c][r].Equal(big[c][r]) {
				t.Fatalf("call %d rank %d changed when P grew from 4 to 8", c, r)
			}
		}
	}
}

// TestSeedIsolationSubsystems: the value-noise subsystem and the support
// subsystem draw from separate streams, so changing one leaves the other
// byte-identical.
func TestSeedIsolationSubsystems(t *testing.T) {
	base := Scenario{
		Name: "subsys", N: 1 << 14, P: 4, Calls: 3,
		Density: Const(0.03),
	}
	normal := base
	normal.Values = ValuesNormal
	key := NewKey(29)
	a := base.Generator(key).All()
	b := normal.Generator(key).All()
	for c := range a {
		for r := range a[c] {
			ai, _ := a[c][r].Pairs()
			bi, _ := b[c][r].Pairs()
			if len(ai) != len(bi) {
				t.Fatalf("support size changed with the value spec")
			}
			for j := range ai {
				if ai[j] != bi[j] {
					t.Fatalf("call %d rank %d: support changed when only the value distribution changed", c, r)
				}
			}
		}
	}
	// Conversely, reshaping the support (same k) leaves the value stream's
	// draw sequence unchanged.
	shaped := base
	shaped.Blocks = []Block{{Start: 0.2, Frac: 0.1, Weight: 1}}
	shaped.HotMass = Const(0.8)
	sv := shaped.Generator(key).All()
	for c := range a {
		for r := range a[c] {
			_, av := a[c][r].Pairs()
			_, bv := sv[c][r].Pairs()
			as := append([]float64(nil), av...)
			bs := append([]float64(nil), bv...)
			sort.Float64s(as)
			sort.Float64s(bs)
			for j := range as {
				if as[j] != bs[j] {
					t.Fatalf("call %d rank %d: value draws changed when only the support shape changed", c, r)
				}
			}
		}
	}
}

// TestSeedIsolationCallPrefix: a longer run extends a shorter one — the
// shared prefix is byte-identical, so cutting a sweep short (or extending
// it) never invalidates earlier calls.
func TestSeedIsolationCallPrefix(t *testing.T) {
	short := Scenario{Name: "prefix", N: 1 << 14, P: 4, Calls: 3, Density: Const(0.02)}
	long := short
	long.Calls = 6
	key := NewKey(31)
	a := short.Generator(key).All()
	b := long.Generator(key).All()
	for c := range a {
		for r := range a[c] {
			if !a[c][r].Equal(b[c][r]) {
				t.Fatalf("call %d rank %d: prefix changed when Calls grew", c, r)
			}
		}
	}
}

// TestGoldenDigests pins every library scenario's generated bytes to the
// committed digests: any change to the generator, the key derivation, or
// a scenario definition fails here before it silently invalidates the
// drift-gated BENCH documents. Regenerate with
// `go test ./internal/scenario -run TestGoldenDigests -update`.
func TestGoldenDigests(t *testing.T) {
	key := NewKey(701)
	got := map[string]string{}
	for _, sc := range Library() {
		got[sc.Name] = digestScenario(sc, key)
	}
	const path = "testdata/digests.json"
	if *updateGolden {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden digests (regenerate with -update): %v", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	if len(want) != len(got) {
		t.Errorf("library has %d scenarios, golden file %d (run -update after adding one)", len(got), len(want))
	}
	for name, d := range got {
		if want[name] == "" {
			t.Errorf("scenario %s has no golden digest (run -update)", name)
			continue
		}
		if want[name] != d {
			t.Errorf("scenario %s: digest %s, golden %s — generated bytes changed", name, d, want[name])
		}
	}
}
