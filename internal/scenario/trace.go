package scenario

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"

	"repro/internal/stream"
)

// Trace file format (little endian), version 1:
//
//	bytes 0..7    magic "SPCMLTRC"
//	bytes 8..9    uint16 format version (1)
//	bytes 10..17  uint64 SimulationKey the trace was generated under
//	bytes 18..19  uint16 scenario-name length, then the name bytes
//	next 4        uint32 vector dimension N
//	next 4        uint32 rank count P
//	next 4        uint32 step (call) count
//	then step × P records, step-major, rank-minor:
//	              uint32 record length, then one stream.Vector in its
//	              self-describing wire form (AppendWire / DecodeWire)
//	last 4        uint32 CRC-32 (IEEE) of every preceding byte
//
// The payload codec is the transport's field-exact wire form, so a decoded
// trace reproduces each input vector bit for bit — replaying a trace
// through any deterministic consumer (a BENCH cell, an adaptation
// decision) yields byte-identical output to the live run that recorded it.

// traceMagic opens every trace file.
const traceMagic = "SPCMLTRC"

// traceVersion is the current trace format version.
const traceVersion = 1

// Trace is a fully-materialized input schedule: the per-step, per-rank
// vectors one scenario generation emitted, plus the provenance needed to
// regenerate it (scenario name and key).
type Trace struct {
	// Name is the scenario the trace was recorded from.
	Name string
	// Key is the SimulationKey the generation ran under.
	Key SimulationKey
	// N and P are the vector dimension and rank count.
	N, P int
	// Steps holds the schedule: Steps[c][r] is rank r's input at call c.
	Steps [][]*stream.Vector
}

// Record materializes a scenario's full schedule as a trace.
func Record(sc Scenario, key SimulationKey) *Trace {
	g := sc.Generator(key)
	return &Trace{Name: sc.Name, Key: key, N: sc.N, P: sc.P, Steps: g.All()}
}

// Encode serializes the trace to its file form.
func (t *Trace) Encode() []byte {
	size := 8 + 2 + 8 + 2 + len(t.Name) + 12
	for _, step := range t.Steps {
		for _, v := range step {
			size += 4 + v.WireSize()
		}
	}
	size += 4 // CRC
	buf := make([]byte, 0, size)
	buf = append(buf, traceMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, traceVersion)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(t.Key))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(t.Name)))
	buf = append(buf, t.Name...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(t.N))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(t.P))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(t.Steps)))
	for _, step := range t.Steps {
		for _, v := range step {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(v.WireSize()))
			buf = v.AppendWire(buf)
		}
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// WriteFile writes the encoded trace to path.
func (t *Trace) WriteFile(path string) error {
	return os.WriteFile(path, t.Encode(), 0o644)
}

// Decode parses a trace file image. It validates the magic, version,
// checksum, and every record against the header, returning an error — and
// never panicking — on truncated or corrupt input.
func Decode(buf []byte) (*Trace, error) {
	if len(buf) < len(traceMagic)+2 {
		return nil, fmt.Errorf("scenario: trace truncated (%d bytes)", len(buf))
	}
	if string(buf[:len(traceMagic)]) != traceMagic {
		return nil, fmt.Errorf("scenario: not a trace file (bad magic)")
	}
	if v := binary.LittleEndian.Uint16(buf[8:]); v != traceVersion {
		return nil, fmt.Errorf("scenario: unsupported trace version %d (want %d)", v, traceVersion)
	}
	if len(buf) < 14 {
		return nil, fmt.Errorf("scenario: trace truncated (%d bytes)", len(buf))
	}
	body, tail := buf[:len(buf)-4], buf[len(buf)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(tail); got != want {
		return nil, fmt.Errorf("scenario: trace checksum mismatch (have %08x, want %08x)", got, want)
	}

	r := body[10:] // past magic + version
	if len(r) < 10 {
		return nil, fmt.Errorf("scenario: trace header truncated")
	}
	t := &Trace{Key: SimulationKey(binary.LittleEndian.Uint64(r))}
	nameLen := int(binary.LittleEndian.Uint16(r[8:]))
	r = r[10:]
	if len(r) < nameLen+12 {
		return nil, fmt.Errorf("scenario: trace header truncated")
	}
	t.Name = string(r[:nameLen])
	r = r[nameLen:]
	t.N = int(binary.LittleEndian.Uint32(r))
	t.P = int(binary.LittleEndian.Uint32(r[4:]))
	steps := int(binary.LittleEndian.Uint32(r[8:]))
	r = r[12:]
	if t.N <= 0 || t.P <= 0 || steps < 0 {
		return nil, fmt.Errorf("scenario: trace header invalid (N=%d P=%d steps=%d)", t.N, t.P, steps)
	}

	for c := 0; c < steps; c++ {
		step := make([]*stream.Vector, t.P)
		for rank := 0; rank < t.P; rank++ {
			if len(r) < 4 {
				return nil, fmt.Errorf("scenario: trace truncated at step %d rank %d", c, rank)
			}
			recLen := int(binary.LittleEndian.Uint32(r))
			r = r[4:]
			if recLen < 0 || len(r) < recLen {
				return nil, fmt.Errorf("scenario: trace truncated at step %d rank %d (record %d bytes, %d left)", c, rank, recLen, len(r))
			}
			v, used, err := stream.DecodeWire(r[:recLen])
			if err != nil {
				return nil, fmt.Errorf("scenario: trace step %d rank %d: %v", c, rank, err)
			}
			if used != recLen {
				return nil, fmt.Errorf("scenario: trace step %d rank %d: record length %d, decoded %d", c, rank, recLen, used)
			}
			if v.Dim() != t.N {
				return nil, fmt.Errorf("scenario: trace step %d rank %d: dimension %d, header says %d", c, rank, v.Dim(), t.N)
			}
			step[rank] = v
			r = r[recLen:]
		}
		t.Steps = append(t.Steps, step)
	}
	if len(r) != 0 {
		return nil, fmt.Errorf("scenario: %d trailing bytes after last record", len(r))
	}
	return t, nil
}

// ReadFile reads and decodes a trace file.
func ReadFile(path string) (*Trace, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	t, err := Decode(buf)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}
