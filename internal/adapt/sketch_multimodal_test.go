package adapt

import (
	"math"
	"testing"

	"repro/internal/scenario"
)

// Multi-modal coverage for the sketch's hot-set decomposition: because
// decompose sorts buckets by occupancy before taking the maximizing
// prefix, several disjoint hot blocks must aggregate into one
// (hotFraction, hotMass) estimate — total width and total mass — even
// though the blocks are far apart in index space. This closes the
// single-block gap of the original sketch tests.

// multiModalCase is one scenario plus the shape its sketch must recover.
type multiModalCase struct {
	name    string
	blocks  []scenario.Block
	hotMass float64
}

// expectedShape returns the aggregate (width, in-block mass) the sketch
// should see: ΣFrac and hotMass plus the uniform spill landing inside the
// blocks.
func (c multiModalCase) expectedShape() (frac, mass float64) {
	for _, b := range c.blocks {
		frac += b.Frac
	}
	return frac, c.hotMass + (1-c.hotMass)*frac
}

func TestSketchMultiModal(t *testing.T) {
	// Block edges sit on 1/64 bucket boundaries so quantization error
	// stays inside the ±0.05 / ±0.10 acceptance bands.
	cases := []multiModalCase{
		{
			name: "two-blocks",
			blocks: []scenario.Block{
				{Start: 8.0 / 64, Frac: 2.0 / 64, Weight: 0.5},
				{Start: 40.0 / 64, Frac: 2.0 / 64, Weight: 0.5},
			},
			hotMass: 0.8,
		},
		{
			name: "three-blocks",
			blocks: []scenario.Block{
				{Start: 4.0 / 64, Frac: 2.0 / 64, Weight: 0.5},
				{Start: 28.0 / 64, Frac: 2.0 / 64, Weight: 0.3},
				{Start: 52.0 / 64, Frac: 1.0 / 64, Weight: 0.2},
			},
			hotMass: 0.75,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sc := scenario.Scenario{
				Name: "sketch-" + c.name, N: 1 << 16, P: 1, Calls: 8,
				Density: scenario.Const(0.02),
				Blocks:  c.blocks,
				HotMass: scenario.Const(c.hotMass),
			}
			s := NewShapeSketch(0, 0)
			g := sc.Generator(scenario.NewKey(3))
			for vs := g.Next(); vs != nil; vs = g.Next() {
				s.Observe(vs[0])
			}
			st := s.Stats()
			wantFrac, wantMass := c.expectedShape()
			if math.Abs(st.HotFraction-wantFrac) > 0.05 {
				t.Errorf("hot fraction %.3f, want %.3f +-0.05", st.HotFraction, wantFrac)
			}
			if math.Abs(st.HotMass-wantMass) > 0.10 {
				t.Errorf("hot mass %.3f, want %.3f +-0.10", st.HotMass, wantMass)
			}
			if st.Divergence < 0.5 {
				t.Errorf("divergence %.3f: a strongly multi-modal support must read far from uniform", st.Divergence)
			}
		})
	}
}

// TestSketchMultiModalVsSingleBlock pins the aggregation property
// directly: moving half a block's mass to a distant block must leave the
// sketch's width and mass estimates nearly unchanged (the decomposition
// is permutation-invariant in bucket positions).
func TestSketchMultiModalVsSingleBlock(t *testing.T) {
	run := func(name string, blocks []scenario.Block) SketchStats {
		sc := scenario.Scenario{
			Name: name, N: 1 << 16, P: 1, Calls: 8,
			Density: scenario.Const(0.02),
			Blocks:  blocks,
			HotMass: scenario.Const(0.8),
		}
		s := NewShapeSketch(0, 0)
		g := sc.Generator(scenario.NewKey(5))
		for vs := g.Next(); vs != nil; vs = g.Next() {
			s.Observe(vs[0])
		}
		return s.Stats()
	}
	single := run("agg-single", []scenario.Block{{Start: 0, Frac: 4.0 / 64, Weight: 1}})
	split := run("agg-split", []scenario.Block{
		{Start: 0, Frac: 2.0 / 64, Weight: 0.5},
		{Start: 48.0 / 64, Frac: 2.0 / 64, Weight: 0.5},
	})
	if math.Abs(single.HotFraction-split.HotFraction) > 0.02 {
		t.Errorf("splitting the block moved hot fraction: %.3f vs %.3f", single.HotFraction, split.HotFraction)
	}
	if math.Abs(single.HotMass-split.HotMass) > 0.05 {
		t.Errorf("splitting the block moved hot mass: %.3f vs %.3f", single.HotMass, split.HotMass)
	}
}
