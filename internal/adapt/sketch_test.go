package adapt

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/density"
	"repro/internal/stream"
)

// genSupport draws k distinct indices in [0, n) with the given pattern:
// "uniform", "clustered" (a [0, n/10) hot block absorbing 70% of draws —
// the shape of the experiments' clustered cells and of
// core.DefaultHotFraction/DefaultHotMass), or "heavytail" (Zipf-ranked
// indices, the shape of embedding-gradient supports).
func genSupport(rng *rand.Rand, n, k int, pattern string) *stream.Vector {
	zipf := rand.NewZipf(rng, 1.3, 1, uint64(n-1))
	seen := map[int32]bool{}
	idx := make([]int32, 0, k)
	val := make([]float64, 0, k)
	for len(idx) < k {
		var ix int32
		switch pattern {
		case "clustered":
			if rng.Float64() < 0.7 {
				ix = int32(rng.Intn(n / 10))
			} else {
				ix = int32(rng.Intn(n))
			}
		case "heavytail":
			ix = int32(zipf.Uint64())
		default:
			ix = int32(rng.Intn(n))
		}
		if seen[ix] {
			continue
		}
		seen[ix] = true
		idx = append(idx, ix)
		val = append(val, rng.NormFloat64()+0.5)
	}
	return stream.NewSparse(n, idx, val, stream.OpSum)
}

// TestSketchUniform: uniform supports must not be classified clustered —
// the divergence estimate stays well under the decision threshold.
func TestSketchUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := NewShapeSketch(0, 0)
	for i := 0; i < 12; i++ {
		s.Observe(genSupport(rng, 1<<18, 4000, "uniform"))
	}
	st := s.Stats()
	if st.Divergence >= DefaultClusterThreshold {
		t.Fatalf("uniform divergence %.3f should stay below threshold %.2f", st.Divergence, DefaultClusterThreshold)
	}
	if math.Abs(st.K-4000) > 1 {
		t.Fatalf("k EWMA %.1f, want 4000", st.K)
	}
	t.Logf("uniform: div=%.3f f=%.3f m=%.3f", st.Divergence, st.HotFraction, st.HotMass)
}

// TestSketchClustered: on the clustered pattern (hot fraction 0.1, hot
// mass ≈ 0.73 including the uniform tail's hot-region hits) the sketch
// must recover the hot fraction within ±0.05 and the hot mass within
// ±0.10 — the tolerances at which density.ExpectedKClustered stays inside
// its ~15% validity band.
func TestSketchClustered(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := NewShapeSketch(0, 0)
	for i := 0; i < 12; i++ {
		s.Observe(genSupport(rng, 1<<18, 4000, "clustered"))
	}
	st := s.Stats()
	if st.Divergence < DefaultClusterThreshold {
		t.Fatalf("clustered divergence %.3f should exceed threshold %.2f", st.Divergence, DefaultClusterThreshold)
	}
	if math.Abs(st.HotFraction-0.1) > 0.05 {
		t.Fatalf("hot fraction %.3f, want 0.1 ± 0.05", st.HotFraction)
	}
	wantMass := 0.7 + 0.3*0.1 // biased draws plus the uniform tail's hot hits
	if math.Abs(st.HotMass-wantMass) > 0.10 {
		t.Fatalf("hot mass %.3f, want %.2f ± 0.10", st.HotMass, wantMass)
	}
	t.Logf("clustered: div=%.3f f=%.3f m=%.3f", st.Divergence, st.HotFraction, st.HotMass)

	// The estimated parameters must price fill-in at least as well as the
	// defaults: E[K] under the estimated shape tracks the measured union
	// within the documented ~15%.
	inputs := make([][]int32, 16)
	for r := range inputs {
		idx, _ := genSupport(rng, 1<<18, 4000, "clustered").Pairs()
		inputs[r] = idx
	}
	measured := float64(density.MeasureK(inputs))
	est := density.ExpectedKClustered(1<<18, 4000, 16, st.HotFraction, st.HotMass)
	if rel := math.Abs(est-measured) / measured; rel > 0.15 {
		t.Fatalf("estimated-shape E[K]=%.0f vs measured %.0f (rel %.0f%%)", est, measured, rel*100)
	}
}

// TestSketchHeavyTailed: Zipf supports are strongly concentrated; the
// sketch must classify them clustered, with a small hot fraction holding
// the bulk of the mass.
func TestSketchHeavyTailed(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := NewShapeSketch(0, 0)
	for i := 0; i < 12; i++ {
		s.Observe(genSupport(rng, 1<<18, 4000, "heavytail"))
	}
	st := s.Stats()
	if st.Divergence < DefaultClusterThreshold {
		t.Fatalf("heavy-tail divergence %.3f should exceed threshold %.2f", st.Divergence, DefaultClusterThreshold)
	}
	if st.HotFraction > 0.25 {
		t.Fatalf("heavy-tail hot fraction %.3f should be small", st.HotFraction)
	}
	if st.HotMass < 0.5 {
		t.Fatalf("heavy-tail hot mass %.3f should hold the bulk", st.HotMass)
	}
	t.Logf("heavytail: div=%.3f f=%.3f m=%.3f", st.Divergence, st.HotFraction, st.HotMass)
}

// TestSketchOnDataGenerator: supports assembled from the data package's
// synthetic sparse rows (the URL/Webspam stand-ins with a planted hot
// region) must be detected as clustered with a hot fraction near the
// generator's configured one.
func TestSketchOnDataGenerator(t *testing.T) {
	cfg := data.SparseConfig{
		Rows: 400, Dim: 1 << 16, NNZPerRow: 150,
		HotFraction: 0.1, ClusterBias: 0.7, Seed: 7,
	}
	ds := data.SyntheticSparse(cfg)
	s := NewShapeSketch(0, 0)
	row := 0
	for call := 0; call < 10; call++ {
		// One "gradient" per call: the union of a minibatch of rows.
		union := map[int32]bool{}
		for b := 0; b < 40; b++ {
			idx, _ := ds.Row(row % ds.Rows())
			row++
			for _, ix := range idx {
				union[ix] = true
			}
		}
		idx := make([]int32, 0, len(union))
		val := make([]float64, 0, len(union))
		for ix := range union {
			idx = append(idx, ix)
			val = append(val, 1)
		}
		s.Observe(stream.NewSparse(cfg.Dim, idx, val, stream.OpSum))
	}
	st := s.Stats()
	if st.Divergence < DefaultClusterThreshold {
		t.Fatalf("data-generator divergence %.3f should exceed threshold %.2f", st.Divergence, DefaultClusterThreshold)
	}
	if math.Abs(st.HotFraction-cfg.HotFraction) > 0.06 {
		t.Fatalf("hot fraction %.3f, want %.2f ± 0.06", st.HotFraction, cfg.HotFraction)
	}
	t.Logf("data generator: div=%.3f f=%.3f m=%.3f k=%.0f", st.Divergence, st.HotFraction, st.HotMass, st.K)
}

// TestSketchDense: dense vectors are observed through sampling; the k
// estimate must track the true non-neutral count and the shape converge
// toward uniform.
func TestSketchDense(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 1 << 16
	dns := make([]float64, n)
	nnz := 0
	for i := range dns {
		if rng.Float64() < 0.8 {
			dns[i] = rng.NormFloat64() + 2
			nnz++
		}
	}
	v := stream.NewDense(dns, stream.OpSum)
	s := NewShapeSketch(0, 0)
	for i := 0; i < 4; i++ {
		s.Observe(v)
	}
	st := s.Stats()
	if rel := math.Abs(st.K-float64(nnz)) / float64(nnz); rel > 0.10 {
		t.Fatalf("dense k estimate %.0f vs true %d (rel %.0f%%)", st.K, nnz, rel*100)
	}
	if st.Divergence >= DefaultClusterThreshold {
		t.Fatalf("near-full dense support should not read clustered (div %.3f)", st.Divergence)
	}
}

// TestSketchTracksDrift: a workload that morphs from uniform to clustered
// must cross the classification threshold within a few calls of the
// change — the EWMA's time constant.
func TestSketchTracksDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := NewShapeSketch(0, 0)
	for i := 0; i < 15; i++ {
		s.Observe(genSupport(rng, 1<<18, 4000, "uniform"))
	}
	if s.Stats().Divergence >= DefaultClusterThreshold {
		t.Fatal("still uniform, should be below threshold")
	}
	crossed := -1
	for i := 0; i < 15; i++ {
		s.Observe(genSupport(rng, 1<<18, 4000, "clustered"))
		if s.Stats().Divergence >= DefaultClusterThreshold {
			crossed = i + 1
			break
		}
	}
	if crossed < 0 || crossed > 6 {
		t.Fatalf("divergence should cross the threshold within 6 calls of the drift, took %d", crossed)
	}
	t.Logf("threshold crossed %d calls after the drift", crossed)
}

// TestSketchEmptyAndTiny: degenerate supports must not panic and must not
// trigger the clustered classification.
func TestSketchEmptyAndTiny(t *testing.T) {
	s := NewShapeSketch(0, 0)
	s.Observe(stream.Zero(128, stream.OpSum))
	v := stream.NewSparse(128, []int32{5}, []float64{1}, stream.OpSum)
	s.Observe(v)
	st := s.Stats()
	if st.Calls != 2 {
		t.Fatalf("calls = %d, want 2", st.Calls)
	}
}

// FuzzSketchObserveOnly: observing any vector never panics, never mutates
// it, and never changes merge results — sketching is strictly
// observe-only.
func FuzzSketchObserveOnly(f *testing.F) {
	f.Add(int64(1), 64, 8, false)
	f.Add(int64(2), 1024, 900, false) // past δ: dense representation
	f.Add(int64(3), 4096, 0, true)
	f.Fuzz(func(t *testing.T, seed int64, n, k int, dense bool) {
		if n <= 0 || n > 1<<16 {
			n = 1 + (abs(n) % (1 << 16))
		}
		if k < 0 || k > n {
			k = abs(k) % (n + 1)
		}
		rng := rand.New(rand.NewSource(seed))
		mk := func() *stream.Vector {
			seen := map[int32]bool{}
			idx := make([]int32, 0, k)
			val := make([]float64, 0, k)
			for len(idx) < k {
				ix := int32(rng.Intn(n))
				if seen[ix] {
					continue
				}
				seen[ix] = true
				idx = append(idx, ix)
				val = append(val, float64(rng.Intn(9)-4))
			}
			v := stream.NewSparse(n, idx, val, stream.OpSum)
			if dense {
				v.Densify()
			}
			return v
		}
		a, b, c := mk(), mk(), mk()
		ref := stream.MergeK([]*stream.Vector{a, b, c}, nil).ToDense()

		s := NewShapeSketch(0, 0)
		before := a.ToDense()
		s.Observe(a)
		s.Observe(b)
		s.Observe(c)
		after := a.ToDense()
		for i := range before {
			if math.Float64bits(before[i]) != math.Float64bits(after[i]) {
				t.Fatalf("Observe mutated coordinate %d: %v -> %v", i, before[i], after[i])
			}
		}
		got := stream.MergeK([]*stream.Vector{a, b, c}, nil).ToDense()
		for i := range ref {
			if math.Float64bits(ref[i]) != math.Float64bits(got[i]) {
				t.Fatalf("merge after Observe differs at %d: %v vs %v", i, ref[i], got[i])
			}
		}
	})
}

func abs(x int) int {
	if x < 0 {
		if x == math.MinInt {
			return math.MaxInt
		}
		return -x
	}
	return x
}
