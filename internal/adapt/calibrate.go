package adapt

import (
	"repro/internal/comm"
	"repro/internal/simnet"
)

// LinkCalibrator fits per-hierarchy-level α–β link constants online from
// observed transfers. Every comm.TraceEvent carries the message's wire
// size, the hierarchy level it was priced at, the egress serialization
// factor it paid, and its virtual send/arrival times; under the α–β model
// each transfer satisfies
//
//	arrival − send = α' + β' · bytes · factor
//
// with α' = α + per-message software overhead and β' = β + per-byte
// software cost — exactly the (Alpha, BetaPerByte) pair the cost model's
// message pricing consumes once the software terms are folded in. The
// calibrator accumulates the running least-squares sums per level, so the
// fit is O(1) per event and exact whenever the observed level really is
// priced by one affine law (which the simulator guarantees; on a real
// network the fit is the usual noisy regression).
//
// A calibrator belongs to one rank and consumes only that rank's own
// sends (comm.Tracer.EventsOf): a rank's own events are always a complete,
// deterministic prefix of its send history, regardless of what other
// ranks are doing concurrently, which keeps per-rank fits reproducible.
// Cross-rank agreement on the fitted constants is the Controller's job.
type LinkCalibrator struct {
	src      int // world rank whose sends are consumed
	consumed int // own events already folded into the sums
	gen      int // tracer reset generation the cursor belongs to
	fits     []linkFit
}

// linkFit holds one level's running least-squares sums over samples
// (x = bytes·factor, y = transfer seconds).
type linkFit struct {
	n, sx, sy, sxx, sxy float64
}

// NewLinkCalibrator returns an empty calibrator for the given world rank.
func NewLinkCalibrator(worldRank int) *LinkCalibrator {
	return &LinkCalibrator{src: worldRank}
}

// ConsumeOwn folds this rank's not-yet-consumed sends from the tracer
// into the per-level fits — an O(new events) incremental read
// (comm.Tracer.EventsOfSince), not a rescan of the history. Safe to call
// at any point of a collective schedule: only events the calibrator's
// own rank produced are read. A Tracer.Reset in between (detected by the
// reset generation, however many events were re-recorded since) discards
// the fits along with the cursor, so epochs are never mixed.
func (c *LinkCalibrator) ConsumeOwn(tr *comm.Tracer) {
	if tr == nil {
		return
	}
	events, gen := tr.EventsOfSince(c.src, c.consumed)
	if gen != c.gen {
		c.gen, c.consumed, c.fits = gen, 0, nil
		events, _ = tr.EventsOfSince(c.src, 0)
	}
	c.ObserveEvents(events)
	c.consumed += len(events)
}

// ObserveEvents folds the given trace events into the per-level fits
// (no ownership filtering — callers that already hold a coherent event
// set, e.g. a post-run analysis, can feed it directly).
func (c *LinkCalibrator) ObserveEvents(events []comm.TraceEvent) {
	for _, e := range events {
		for e.Level >= len(c.fits) {
			c.fits = append(c.fits, linkFit{})
		}
		f := &c.fits[e.Level]
		x := float64(e.Bytes) * e.NICFactor
		y := e.Arrival - e.SendTime
		f.n++
		f.sx += x
		f.sy += y
		f.sxx += x * x
		f.sxy += x * y
	}
}

// Samples returns how many transfers have been observed at the level.
func (c *LinkCalibrator) Samples(level int) int {
	if level < 0 || level >= len(c.fits) {
		return 0
	}
	return int(c.fits[level].n)
}

// Fit returns the fitted (alpha, beta) of the level in seconds and
// seconds-per-byte. ok is false while the fit is unusable: fewer than two
// samples, no spread in message sizes (α and β cannot be separated), a
// non-positive slope, or a materially negative intercept. Mildly negative
// intercepts clamp to zero instead of rejecting: on the simulator they are
// exact-fit cancellation noise (~1e-12), and on the real transports, whose
// measured durations are genuinely noisy, an ordinary least-squares
// regression routinely lands the intercept slightly below zero — rejecting
// those would starve calibration on exactly the backends it exists for.
// The rejection line is an intercept below a quarter of the mean observed
// transfer time, which no amount of honest timing noise produces.
func (c *LinkCalibrator) Fit(level int) (alpha, beta float64, ok bool) {
	if level < 0 || level >= len(c.fits) {
		return 0, 0, false
	}
	f := c.fits[level]
	if f.n < 2 {
		return 0, 0, false
	}
	denom := f.n*f.sxx - f.sx*f.sx
	if denom <= 1e-9*f.sxx {
		return 0, 0, false
	}
	beta = (f.n*f.sxy - f.sx*f.sy) / denom
	alpha = (f.sy - beta*f.sx) / f.n
	if alpha < 0 {
		if alpha < -1e-12 && alpha < -0.25*(f.sy/f.n) {
			return 0, 0, false
		}
		alpha = 0
	}
	if beta <= 0 {
		return 0, 0, false
	}
	return alpha, beta, true
}

// CalibratedProfile returns base with its message terms replaced by the
// level's fitted constants: Alpha and BetaPerByte carry the measured
// values (software overheads are folded into them, so those fields are
// zeroed) while the compute terms (γ, sparse factor), which transfers
// cannot reveal, are kept from base. ok is false — and base returned
// unchanged — while the level has fewer than minSamples usable samples or
// no valid fit. This is the deliberate single-rank convenience (post-run
// analysis, custom decision layers); the Controller does not call it —
// its decisions substitute the raw fitted constants only after averaging
// them across ranks, so no rank ever prices with its own unagreed fit.
func (c *LinkCalibrator) CalibratedProfile(base simnet.Profile, level, minSamples int) (simnet.Profile, bool) {
	if c.Samples(level) < minSamples {
		return base, false
	}
	alpha, beta, ok := c.Fit(level)
	if !ok {
		return base, false
	}
	return calibrated(base, alpha, beta), true
}
