package adapt

import (
	"strconv"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/obs"
)

// Decision reasons, recorded on every DecisionEvent: why the hysteresis
// state machine produced the choice it did.
const (
	// ReasonAdopt is the first decision: the candidate is adopted
	// unconditionally.
	ReasonAdopt = "adopt"
	// ReasonKeep means the cost model's candidate equals the incumbent.
	ReasonKeep = "keep"
	// ReasonHold means the candidate cleared the switch margin but has
	// not sustained it for HoldCalls decisions yet; the incumbent runs.
	ReasonHold = "hold"
	// ReasonSwitch means the margin was sustained: the incumbent was
	// replaced by the candidate this decision.
	ReasonSwitch = "switch"
	// ReasonMargin means the candidate differs but is not predicted
	// SwitchMargin cheaper; the incumbent is kept and any pending switch
	// resets.
	ReasonMargin = "margin"
)

// DecisionEvent is one entry of a Controller's structured decision
// history: what ran, what the model predicted for it, and why the
// hysteresis resolved that way. The obs layer exports each event as an
// "adapt:decision" instant on the deciding rank's timeline.
type DecisionEvent struct {
	// Call is the decided-call index on this controller (Plan and
	// Allreduce each count one; PlanBuckets counts one for the batch).
	Call int
	// Bucket is the scheduler bucket the decision was for, or -1 for a
	// whole-call decision (Allreduce, Plan).
	Bucket int
	// Algorithm and Levels are the choice that ran.
	Algorithm core.Algorithm
	// Levels is the hierarchy depth of the choice.
	Levels int
	// Chunks is the resolved pipeline chunk degree (bucketed path only;
	// 0 when the path does not resolve chunks).
	Chunks int
	// Support is the support model the decision was priced with.
	Support core.SupportModel
	// PredictedSeconds is the cost model's prediction for the choice
	// that ran, under the agreed scenario.
	PredictedSeconds float64
	// Switched reports whether this decision replaced the incumbent.
	Switched bool
	// Reason is one of the Reason* constants.
	Reason string
}

// maxDecisionHistory caps a controller's recorded history so long-running
// training loops stay at bounded memory; decisions past the cap still
// happen and still reach the obs layer, they are just not retained here.
const maxDecisionHistory = 4096

// Decisions returns a copy of this controller's decision history, oldest
// first (at most maxDecisionHistory entries).
func (a *Controller) Decisions() []DecisionEvent {
	return append([]DecisionEvent(nil), a.decisions...)
}

// recordDecision appends e to the history and, when the world is
// observed, emits it as an "adapt:decision" instant with the decision
// counters bumped.
func (a *Controller) recordDecision(p *comm.Proc, e DecisionEvent) {
	if len(a.decisions) < maxDecisionHistory {
		a.decisions = append(a.decisions, e)
	}
	if o := p.Obs(); o != nil {
		rank := p.WorldRank()
		reg := o.Metrics()
		reg.Counter("adapt.decisions").Inc(rank)
		if e.Switched {
			reg.Counter("adapt.switches").Inc(rank)
		}
		support := "uniform"
		if e.Support == core.SupportClustered {
			support = "clustered"
		}
		attrs := []obs.Attr{
			{Key: "alg", Value: e.Algorithm.String()},
			{Key: "levels", Value: strconv.Itoa(e.Levels)},
			{Key: "support", Value: support},
			{Key: "predicted_s", Value: strconv.FormatFloat(e.PredictedSeconds, 'g', -1, 64)},
			{Key: "reason", Value: e.Reason},
		}
		if e.Bucket >= 0 {
			attrs = append(attrs,
				obs.Attr{Key: "bucket", Value: strconv.Itoa(e.Bucket)},
				obs.Attr{Key: "chunks", Value: strconv.Itoa(e.Chunks)})
		}
		o.Instant("adapt:decision", p.Now(), attrs...)
	}
}

// predictFor prices the decided choice under the agreed scenario — the
// number a DecisionEvent carries as PredictedSeconds.
func predictFor(alg core.Algorithm, levels, chunks int, s core.CostScenario) float64 {
	s.Levels = levels
	if chunks != 0 {
		s.Chunks = chunks
	}
	return core.PredictSeconds(alg, s)
}
