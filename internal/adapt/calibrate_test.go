package adapt

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/simnet"
	"repro/internal/stream"
)

// relClose reports |a−b|/|b| ≤ tol (b non-zero).
func relClose(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Abs(b)
}

// calibInputs builds P deterministic sparse vectors.
func calibInputs(seed int64, n, k, P int) []*stream.Vector {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*stream.Vector, P)
	for r := range out {
		out[r] = genSupport(rng, n, k, "uniform")
	}
	return out
}

// TestCalibratorRecoversFlatProfile: on a flat world the level-0 fit must
// recover the profile's α and β essentially exactly — the simulator
// charges exactly the affine law the calibrator fits.
func TestCalibratorRecoversFlatProfile(t *testing.T) {
	// A deliberately non-standard profile: hand-set constants the
	// calibrator has never seen.
	prof := simnet.Profile{Name: "weird", Alpha: 7.7e-6, BetaPerByte: 3.3e-10,
		GammaPerElem: 2.5e-10, SparseComputeFactor: 4}
	P := 8
	w := comm.NewWorld(P, prof)
	tr := w.EnableTrace()
	inputs := calibInputs(11, 1<<16, 500, P)
	fits := comm.Run(w, func(p *comm.Proc) [2]float64 {
		c := NewLinkCalibrator(p.WorldRank())
		for i := 0; i < 3; i++ {
			core.Allreduce(p, inputs[p.Rank()], core.Options{Algorithm: core.SSARSplitAllgather})
			c.ConsumeOwn(tr)
		}
		alpha, beta, ok := c.Fit(0)
		if !ok {
			t.Errorf("rank %d: fit not ok after %d samples", p.Rank(), c.Samples(0))
		}
		return [2]float64{alpha, beta}
	})
	for r, f := range fits {
		if !relClose(f[0], prof.Alpha, 1e-6) || !relClose(f[1], prof.BetaPerByte, 1e-6) {
			t.Fatalf("rank %d fit (%.3g, %.3g), want (%.3g, %.3g)", r, f[0], f[1], prof.Alpha, prof.BetaPerByte)
		}
	}
}

// TestCalibratorRecoversPerLevel: on a two-level topology with a NIC
// serialization cap, the level-0 and level-1 fits must recover the intra
// and inter profiles — including dividing the recorded contention factor
// back out of the bandwidth term.
func TestCalibratorRecoversPerLevel(t *testing.T) {
	topo := simnet.Topology{RanksPerNode: 4, Intra: simnet.NVLinkLike, Inter: simnet.Aries, NICSerial: 1}
	P := 16
	w := comm.NewWorldTopo(P, topo)
	tr := w.EnableTrace()
	inputs := calibInputs(13, 1<<16, 800, P)
	type fit struct{ a0, b0, a1, b1 float64 }
	fits := comm.Run(w, func(p *comm.Proc) fit {
		c := NewLinkCalibrator(p.WorldRank())
		for i := 0; i < 3; i++ {
			core.Allreduce(p, inputs[p.Rank()], core.Options{Algorithm: core.SSARSplitAllgather})
			c.ConsumeOwn(tr)
		}
		a0, b0, ok0 := c.Fit(0)
		a1, b1, ok1 := c.Fit(1)
		if !ok0 || !ok1 {
			t.Errorf("rank %d: fits not ok (level0 %v over %d, level1 %v over %d)",
				p.Rank(), ok0, c.Samples(0), ok1, c.Samples(1))
		}
		return fit{a0, b0, a1, b1}
	})
	for r, f := range fits {
		if !relClose(f.a0, simnet.NVLinkLike.Alpha, 1e-6) || !relClose(f.b0, simnet.NVLinkLike.BetaPerByte, 1e-6) {
			t.Fatalf("rank %d level-0 fit (%.3g, %.3g), want NVLink (%.3g, %.3g)",
				r, f.a0, f.b0, simnet.NVLinkLike.Alpha, simnet.NVLinkLike.BetaPerByte)
		}
		if !relClose(f.a1, simnet.Aries.Alpha, 1e-6) || !relClose(f.b1, simnet.Aries.BetaPerByte, 1e-6) {
			t.Fatalf("rank %d level-1 fit (%.3g, %.3g), want Aries (%.3g, %.3g)",
				r, f.a1, f.b1, simnet.Aries.Alpha, simnet.Aries.BetaPerByte)
		}
	}
}

// TestCalibratorDegenerate: without spread in message sizes α and β are
// not separable and the fit must refuse.
func TestCalibratorDegenerate(t *testing.T) {
	c := NewLinkCalibrator(0)
	var events []comm.TraceEvent
	for i := 0; i < 32; i++ {
		events = append(events, comm.TraceEvent{
			Src: 0, Dst: 1, Bytes: 1000, NICFactor: 1,
			SendTime: float64(i), Arrival: float64(i) + 1e-5,
		})
	}
	c.ObserveEvents(events)
	if _, _, ok := c.Fit(0); ok {
		t.Fatal("fit over size-degenerate samples must not be ok")
	}
	if _, _, ok := c.Fit(3); ok {
		t.Fatal("fit of an unobserved level must not be ok")
	}
}

// TestCalibratedProfile: the substitution keeps compute terms, folds the
// software terms into the measured constants, and gates on min samples.
func TestCalibratedProfile(t *testing.T) {
	c := NewLinkCalibrator(0)
	alpha, beta := 2e-3, 9e-8
	var events []comm.TraceEvent
	for i := 0; i < 10; i++ {
		bytes := 100 * (i + 1)
		events = append(events, comm.TraceEvent{
			Src: 0, Dst: 1, Bytes: bytes, NICFactor: 1,
			SendTime: float64(i), Arrival: float64(i) + alpha + beta*float64(bytes),
		})
	}
	c.ObserveEvents(events)

	if _, ok := c.CalibratedProfile(simnet.SparkLike, 0, 100); ok {
		t.Fatal("min-samples gate should refuse 10 < 100")
	}
	got, ok := c.CalibratedProfile(simnet.SparkLike, 0, 8)
	if !ok {
		t.Fatal("calibration should be usable with 10 >= 8 samples")
	}
	if !relClose(got.Alpha, alpha, 1e-9) || !relClose(got.BetaPerByte, beta, 1e-9) {
		t.Fatalf("calibrated (%.3g, %.3g), want (%.3g, %.3g)", got.Alpha, got.BetaPerByte, alpha, beta)
	}
	if got.SoftwareOverhead != 0 || got.SoftwarePerByte != 0 {
		t.Fatal("software terms must be folded into the measured constants")
	}
	if got.GammaPerElem != simnet.SparkLike.GammaPerElem ||
		got.SparseComputeFactor != simnet.SparkLike.SparseComputeFactor {
		t.Fatal("compute terms must be kept from the base profile")
	}
}

// TestCalibratorTracerReset: a Reset tracer restarts the consumption
// cursor instead of slicing out of range.
func TestCalibratorTracerReset(t *testing.T) {
	w := comm.NewWorld(2, simnet.Aries)
	tr := w.EnableTrace()
	inputs := calibInputs(17, 1<<12, 100, 2)
	comm.Run(w, func(p *comm.Proc) any {
		return core.Allreduce(p, inputs[p.Rank()], core.Options{Algorithm: core.SSARRecDouble})
	})
	c := NewLinkCalibrator(0)
	c.ConsumeOwn(tr)
	if c.Samples(0) == 0 {
		t.Fatal("expected samples from the first run")
	}
	tr.Reset()
	comm.Run(w, func(p *comm.Proc) any {
		return core.Allreduce(p, inputs[p.Rank()], core.Options{Algorithm: core.SSARRecDouble})
	})
	c.ConsumeOwn(tr) // must not panic; cursor restarts
	if c.Samples(0) == 0 {
		t.Fatal("expected samples after the tracer reset")
	}
}

// TestCalibratorResetAfterRegrowth: a tracer Reset must be detected even
// when the rank has already re-recorded more events than the calibrator's
// cursor — epochs are never mixed into one fit.
func TestCalibratorResetAfterRegrowth(t *testing.T) {
	w := comm.NewWorld(2, simnet.Aries)
	tr := w.EnableTrace()
	// Distinct per-round payload sizes keep the least-squares fit
	// non-degenerate (α and β separable).
	rounds := make([][]*stream.Vector, 8)
	for i := range rounds {
		rounds[i] = calibInputs(19+int64(i), 1<<12, 60+40*i, 2)
	}
	run := func(lo, hi int) {
		comm.Run(w, func(p *comm.Proc) any {
			for i := lo; i < hi; i++ {
				core.Allreduce(p, rounds[i][p.Rank()], core.Options{Algorithm: core.SSARRecDouble})
			}
			return nil
		})
	}
	c := NewLinkCalibrator(0)
	run(0, 2)
	c.ConsumeOwn(tr)
	before := c.Samples(0)
	if before == 0 {
		t.Fatal("expected samples from the first epoch")
	}
	tr.Reset()
	run(2, 8) // regrow PAST the old cursor before the calibrator looks again
	c.ConsumeOwn(tr)
	want := 3 * before // 6 post-reset rounds vs the 2 pre-reset ones
	if got := c.Samples(0); got != want {
		t.Fatalf("post-reset fit holds %d samples, want exactly the %d post-reset ones (no epoch mixing)", got, want)
	}
	alpha, beta, ok := c.Fit(0)
	if !ok || !relClose(alpha, simnet.Aries.Alpha, 1e-6) || !relClose(beta, simnet.Aries.BetaPerByte, 1e-6) {
		t.Fatalf("post-reset fit (%.3g, %.3g, ok=%v) should still recover Aries exactly", alpha, beta, ok)
	}
}
