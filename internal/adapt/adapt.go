// Package adapt is the runtime adaptation layer that makes Auto algorithm
// selection self-calibrating: instead of pricing every allreduce with the
// assumed worst-case uniform support model and hand-set α–β network
// constants, it observes the actual input streams and transfers and feeds
// measured quantities back into the cost model.
//
// Three pieces compose:
//
//   - ShapeSketch — a cheap observe-only sketch of each call's input
//     support (k/n EWMA, bucketed index-position histogram → hot-fraction
//     / hot-mass / divergence estimates), updated inline with the call.
//   - LinkCalibrator — an online per-hierarchy-level least-squares fit of
//     the α–β link constants from comm.TraceEvents.
//   - Controller — the per-rank decision wrapper threading both into
//     core.ChooseAutoLevels with hysteresis, so algorithm/depth switches
//     need a sustained, material predicted gain instead of thrashing
//     between adjacent calls.
//
// Determinism and agreement: every rank must hold its own Controller, all
// constructed with the same Config, and route the same calls through them
// in the same program order (exactly the discipline collectives already
// require). Local estimates are combined with two tiny dense allreduces
// per decided call — a max for the per-rank non-zero count, a sum for the
// shape and calibration statistics — so every rank derives the decision
// from identical agreed inputs and the hysteresis state machines stay in
// lockstep. No rank ever acts on a neighbor's raw estimate.
package adapt

import (
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/simnet"
	"repro/internal/stream"
)

// Config tunes a Controller. The zero value selects all defaults; every
// rank of a world must use an identical Config.
type Config struct {
	// Decay is the sketch EWMA weight of a new observation (default
	// DefaultDecay).
	Decay float64
	// MaxSamples caps the indices one sketch observation inspects
	// (default DefaultMaxSamples).
	MaxSamples int
	// ClusterThreshold is the agreed mean sketch divergence above which
	// the cost model switches to the clustered support model (default
	// DefaultClusterThreshold). Uniform supports measure ≈0.05–0.1 at the
	// default sketch resolution; the clustered test pattern ≈0.6.
	ClusterThreshold float64
	// MinClusterK is the smallest agreed per-rank non-zero count at which
	// the clustered classification is trusted — below it the histogram is
	// too noisy and the uniform worst case is kept (default
	// DefaultMinClusterK).
	MinClusterK int
	// SwitchMargin is the hysteresis band: a candidate must be predicted
	// at least this fraction cheaper than the incumbent choice before a
	// switch is considered (default DefaultSwitchMargin).
	SwitchMargin float64
	// HoldCalls is how many consecutive decided calls the candidate must
	// clear the margin before the switch happens (default
	// DefaultHoldCalls). A step change in the workload therefore converges
	// to the new choice within HoldCalls decided calls.
	HoldCalls int
	// MinCalibSamples is the per-level transfer count below which the
	// calibrated α–β constants are not used (default
	// DefaultMinCalibSamples).
	MinCalibSamples int
}

// Defaults for Config's zero values.
const (
	DefaultClusterThreshold = 0.25
	DefaultMinClusterK      = 256
	DefaultSwitchMargin     = 0.10
	DefaultHoldCalls        = 2
	DefaultMinCalibSamples  = 8
)

// withDefaults resolves zero fields.
func (c Config) withDefaults() Config {
	if c.Decay == 0 {
		c.Decay = DefaultDecay
	}
	if c.MaxSamples == 0 {
		c.MaxSamples = DefaultMaxSamples
	}
	if c.ClusterThreshold == 0 {
		c.ClusterThreshold = DefaultClusterThreshold
	}
	if c.MinClusterK == 0 {
		c.MinClusterK = DefaultMinClusterK
	}
	if c.SwitchMargin == 0 {
		c.SwitchMargin = DefaultSwitchMargin
	}
	if c.HoldCalls == 0 {
		c.HoldCalls = DefaultHoldCalls
	}
	if c.MinCalibSamples == 0 {
		c.MinCalibSamples = DefaultMinCalibSamples
	}
	return c
}

// Controller is one rank's handle on the adaptation subsystem: an
// AutoAdaptive allreduce that sketches each input, keeps link constants
// calibrated, agrees on the measured scenario with the other ranks, and
// resolves the algorithm and hierarchy depth through the cost model with
// hysteresis. Construct one per rank (NewController, or the facade's
// World.EnableAdaptation) and treat it like a Scratch: owned by that
// rank's goroutine, never shared.
type Controller struct {
	cfg    Config
	sketch *ShapeSketch
	calib  *LinkCalibrator
	tracer *comm.Tracer

	started               bool
	curAlg, pendAlg       core.Algorithm
	curLevels, pendLevels int
	pendCount             int

	switches       int
	clusteredCalls int
	lastSupport    core.SupportModel

	buckets        []bucketHold
	bucketSwitches int

	// decisions is the structured decision history (see DecisionEvent),
	// capped at maxDecisionHistory; calls counts decided calls.
	decisions []DecisionEvent
	calls     int
}

// bucketHold is one bucket's hysteresis state machine in the per-bucket
// decision path — the same margin/hold filter Controller.decide applies,
// kept separately per bucket so a small embedding bucket and a large MLP
// bucket each converge to their own choice without resetting the other's
// pending count.
type bucketHold struct {
	started               bool
	curAlg, pendAlg       core.Algorithm
	curLevels, pendLevels int
	curChunks             int
	pendCount             int
}

// decide filters the cost model's per-bucket candidate through this
// bucket's hysteresis. Algorithm/depth switches need a sustained
// SwitchMargin-cheaper prediction for HoldCalls consecutive decisions
// (incumbent and candidate each priced at their own chunk degree); the
// chunk degree itself follows the model freely — it carries no cross-call
// state, so flapping is harmless and hysteresis would only delay the
// cheaper schedule. All inputs are agreed quantities, so every rank's
// state machines transition identically.
func (h *bucketHold) decide(cfg Config, candAlg core.Algorithm, candLevels, candChunks int, s core.CostScenario, switches *int) (core.Algorithm, int, int, bool, string) {
	if !h.started {
		h.started = true
		h.curAlg, h.curLevels, h.curChunks = candAlg, candLevels, candChunks
		return h.curAlg, h.curLevels, h.curChunks, false, ReasonAdopt
	}
	if candAlg == h.curAlg && candLevels == h.curLevels {
		h.pendCount = 0
		h.curChunks = candChunks
		return h.curAlg, h.curLevels, h.curChunks, false, ReasonKeep
	}
	scCur, scCand := s, s
	scCur.Levels, scCur.Chunks = h.curLevels, h.curChunks
	scCand.Levels, scCand.Chunks = candLevels, candChunks
	tCur := core.PredictSeconds(h.curAlg, scCur)
	tCand := core.PredictSeconds(candAlg, scCand)
	if tCand <= (1-cfg.SwitchMargin)*tCur {
		if candAlg == h.pendAlg && candLevels == h.pendLevels {
			h.pendCount++
		} else {
			h.pendAlg, h.pendLevels, h.pendCount = candAlg, candLevels, 1
		}
		if h.pendCount >= cfg.HoldCalls {
			h.curAlg, h.curLevels, h.curChunks = candAlg, candLevels, candChunks
			h.pendCount = 0
			*switches++
			return h.curAlg, h.curLevels, h.curChunks, true, ReasonSwitch
		}
		return h.curAlg, h.curLevels, h.curChunks, false, ReasonHold
	}
	h.pendCount = 0
	return h.curAlg, h.curLevels, h.curChunks, false, ReasonMargin
}

// NewController returns a fresh per-rank controller.
func NewController(cfg Config) *Controller {
	cfg = cfg.withDefaults()
	return &Controller{cfg: cfg, sketch: NewShapeSketch(cfg.MaxSamples, cfg.Decay)}
}

// AttachTracer enables link calibration: the controller will consume this
// rank's own sends from tr before each decision. Call once, before the
// first Allreduce; the tracer is typically the world's
// (comm.World.EnableTrace), shared by all ranks' controllers — each reads
// only its own events. Bound the tracer's memory with
// Tracer.LimitPerRank when the workload is long-running.
func (a *Controller) AttachTracer(tr *comm.Tracer, worldRank int) {
	a.tracer = tr
	a.calib = NewLinkCalibrator(worldRank)
}

// Sketch returns the controller's shape sketch (for inspection).
func (a *Controller) Sketch() *ShapeSketch { return a.sketch }

// Calibrator returns the controller's link calibrator, nil until a tracer
// is attached.
func (a *Controller) Calibrator() *LinkCalibrator { return a.calib }

// Choice returns the current algorithm/depth the controller is holding
// (meaningful after the first Allreduce).
func (a *Controller) Choice() (core.Algorithm, int) { return a.curAlg, a.curLevels }

// Switches returns how many times the held algorithm/depth changed after
// the initial adoption — the quantity the hysteresis tests bound.
func (a *Controller) Switches() int { return a.switches }

// ClusteredCalls returns how many decided calls selected the clustered
// support model.
func (a *Controller) ClusteredCalls() int { return a.clusteredCalls }

// Support returns the support model the last decision used.
func (a *Controller) Support() core.SupportModel { return a.lastSupport }

// Allreduce performs a sparse allreduce of v with the adaptive decision
// layer in front: the call is sketched, the measured scenario is agreed
// across ranks, core.ChooseAutoLevels picks algorithm and depth from it,
// hysteresis filters the pick, and the concrete algorithm runs. Semantics
// (result values, bit-exactness guarantees) are those of core.Allreduce
// for whichever algorithm runs — adaptation is observe-and-choose only.
//
// If opts pins a concrete algorithm (opts.Algorithm != Auto) the call is
// passed through unchanged, though still observed, so a mixed workload
// keeps the sketch warm.
func (a *Controller) Allreduce(p *comm.Proc, v *stream.Vector, opts core.Options) *stream.Vector {
	a.sketch.Observe(v)
	if opts.Algorithm != core.Auto {
		return core.Allreduce(p, v, opts)
	}
	if a.calib != nil {
		a.calib.ConsumeOwn(a.tracer)
	}
	s := a.agreeScenario(p, v, opts)
	candAlg, candLevels, _ := core.ChooseAutoLevels(s)
	alg, levels, switched, reason := a.decide(candAlg, candLevels, s)
	a.recordDecision(p, DecisionEvent{Call: a.calls, Bucket: -1,
		Algorithm: alg, Levels: levels, Support: s.Support,
		PredictedSeconds: predictFor(alg, levels, 0, s),
		Switched:         switched, Reason: reason})
	a.calls++
	opts.Algorithm, opts.Levels = alg, levels
	opts.Support, opts.HotFraction, opts.HotMass = s.Support, s.HotFraction, s.HotMass
	return core.Allreduce(p, v, opts)
}

// Plan makes one adaptive decision for a batch of allreduces that will be
// issued together — the layer-wise training path, which fires one
// nonblocking allreduce per layer. The calls cannot decide individually:
// forked procs do not inherit the parent's tag cursor, and running one
// agreement collective per layer would serialize exactly the calls the
// layer-wise path exists to overlap. Instead the parent proc sketches
// every input, runs the scenario agreement once, and resolves Auto to a
// concrete algorithm/depth through the same hysteresis state the blocking
// path uses; the returned Options (Algorithm pinned, support model filled)
// are then passed to each core.IAllreduce verbatim. The scenario is priced
// on the largest input — the layer that dominates the step's cost. Like
// Allreduce, every rank must call Plan with the same inputs in the same
// program order; a non-Auto opts passes through unchanged (inputs still
// sketched).
func (a *Controller) Plan(p *comm.Proc, vs []*stream.Vector, opts core.Options) core.Options {
	for _, v := range vs {
		a.sketch.Observe(v)
	}
	if opts.Algorithm != core.Auto || len(vs) == 0 {
		return opts
	}
	if a.calib != nil {
		a.calib.ConsumeOwn(a.tracer)
	}
	rep := vs[0]
	for _, v := range vs[1:] {
		if v.NNZ() > rep.NNZ() {
			rep = v
		}
	}
	s := a.agreeScenario(p, rep, opts)
	candAlg, candLevels, _ := core.ChooseAutoLevels(s)
	alg, levels, switched, reason := a.decide(candAlg, candLevels, s)
	a.recordDecision(p, DecisionEvent{Call: a.calls, Bucket: -1,
		Algorithm: alg, Levels: levels, Support: s.Support,
		PredictedSeconds: predictFor(alg, levels, 0, s),
		Switched:         switched, Reason: reason})
	a.calls++
	opts.Algorithm, opts.Levels = alg, levels
	opts.Support, opts.HotFraction, opts.HotMass = s.Support, s.HotFraction, s.HotMass
	return opts
}

// PlanBuckets makes one adaptive decision per fused bucket for a bucketed
// training step: every layer contribution is sketched, the per-bucket
// fused non-zero counts are agreed in a single max-allreduce (bucket
// supports are disjoint, so the fused count is the sum of the bucket's
// layer counts), the shape/calibration statistics in a single
// sum-allreduce, and each bucket's scenario is resolved through
// core.ChooseAutoLevels with the chunk search enabled (core.AutoChunks)
// and filtered by that bucket's own hysteresis state. The returned slice
// has one Options per scheduler bucket, Algorithm pinned, ready for
// BucketScheduler.Issue. Like Plan, every rank must call PlanBuckets with
// the same scheduler composition and inputs in the same program order; a
// non-Auto opts is replicated unchanged (inputs still sketched), with only
// the chunk degree resolved when it asks for core.AutoChunks.
func (a *Controller) PlanBuckets(p *comm.Proc, sched *core.BucketScheduler, contribs []*stream.Vector, opts core.Options) []core.Options {
	for _, v := range contribs {
		a.sketch.Observe(v)
	}
	B := sched.NumBuckets()
	out := make([]core.Options, B)
	for b := range out {
		out[b] = opts
	}
	if B == 0 || len(contribs) == 0 {
		return out
	}
	if opts.Algorithm != core.Auto && opts.Chunks != core.AutoChunks {
		return out
	}
	if a.calib != nil {
		a.calib.ConsumeOwn(a.tracer)
	}
	ks := make([]float64, B)
	for b := range ks {
		n := 0
		for _, li := range sched.Layers(b) {
			n += contribs[li].NNZ()
		}
		ks[b] = float64(n)
	}
	agreedK := core.AllreduceDense(p, ks, stream.OpMax)
	agreed, depth := a.agreeStats(p)
	if len(a.buckets) != B {
		a.buckets = make([]bucketHold, B)
	}
	rep := contribs[0] // dimension/wire settings; every contribution shares them
	for b := range out {
		s := a.scenarioFromAgreed(p, rep, opts, agreedK[b], agreed, depth)
		s.Chunks = core.AutoChunks
		candAlg, candLevels, candChunks := core.ChooseAutoLevels(s)
		if opts.Algorithm != core.Auto {
			// Pinned algorithm: only the chunk degree is adaptive.
			out[b].Chunks = core.ChooseChunks(opts.Algorithm, s)
			continue
		}
		alg, levels, chunks, switched, reason := a.buckets[b].decide(a.cfg, candAlg, candLevels, candChunks, s, &a.bucketSwitches)
		a.recordDecision(p, DecisionEvent{Call: a.calls, Bucket: b,
			Algorithm: alg, Levels: levels, Chunks: chunks, Support: s.Support,
			PredictedSeconds: predictFor(alg, levels, chunks, s),
			Switched:         switched, Reason: reason})
		out[b].Algorithm, out[b].Levels, out[b].Chunks = alg, levels, chunks
		out[b].Support, out[b].HotFraction, out[b].HotMass = s.Support, s.HotFraction, s.HotMass
	}
	a.calls++
	return out
}

// BucketSwitches returns how many per-bucket algorithm/depth switches
// happened after each bucket's initial adoption — the bucketed
// counterpart of Switches.
func (a *Controller) BucketSwitches() int { return a.bucketSwitches }

// agreeScenario builds the measured cost scenario every rank agrees on:
// the globally maximal per-rank non-zero count (one max-allreduce, as
// core's static Auto performs), plus the mean sketch shape and the mean
// fitted link constants (one sum-allreduce), substituted into
// core.ScenarioFor's scenario.
func (a *Controller) agreeScenario(p *comm.Proc, v *stream.Vector, opts core.Options) core.CostScenario {
	kmax := core.AllreduceDense(p, []float64{float64(v.NNZ())}, stream.OpMax)[0]
	agreed, depth := a.agreeStats(p)
	return a.scenarioFromAgreed(p, v, opts, kmax, agreed, depth)
}

// agreeStats runs the one sum-allreduce agreeing on the sketch shape and
// calibration statistics — the K-independent half of agreeScenario, shared
// with the per-bucket path, which agrees on all bucket counts in a single
// separate collective. Returns the agreed sums and the hierarchy depth the
// layout was built for.
func (a *Controller) agreeStats(p *comm.Proc) (agreed []float64, depth int) {
	h, hasHier := p.Hierarchy()
	depth = 1
	if hasHier {
		depth = h.Depth()
	}
	st := a.sketch.Stats()
	// Layout: [hotFrac, hotMass, div, then per level: okFlag, alpha, beta].
	local := make([]float64, 3+3*depth)
	local[0], local[1], local[2] = st.HotFraction, st.HotMass, st.Divergence
	if a.calib != nil {
		for l := 0; l < depth; l++ {
			if alpha, beta, ok := a.calib.Fit(l); ok && a.calib.Samples(l) >= a.cfg.MinCalibSamples {
				local[3+3*l] = 1
				local[4+3*l] = alpha
				local[5+3*l] = beta
			}
		}
	}
	return core.AllreduceDense(p, local, stream.OpSum), depth
}

// scenarioFromAgreed substitutes the agreed statistics into the scenario
// for one collective of agreed non-zero count kmax: support model from the
// mean sketch shape, link constants from the mean usable fits. Pure local
// arithmetic on agreed inputs (no collectives), so it can be applied once
// per bucket after a single agreement round.
func (a *Controller) scenarioFromAgreed(p *comm.Proc, v *stream.Vector, opts core.Options, kmax float64, agreed []float64, depth int) core.CostScenario {
	P := float64(p.Size())
	s := core.ScenarioFor(p, v, opts, int(kmax))
	if s.Topo != nil {
		// Normalize to the hierarchy form so per-level calibration has one
		// substitution point (a Topology prices exactly like its two-level
		// hierarchy).
		th := s.Topo.Hierarchy()
		s.Hier, s.Topo = &th, nil
	}

	// Support model: agreed mean divergence above the threshold selects
	// the clustered closed form, parameterized by the agreed mean hot
	// shape. Low-sample calls keep the uniform worst case.
	avgDiv := agreed[2] / P
	if avgDiv >= a.cfg.ClusterThreshold && int(kmax) >= a.cfg.MinClusterK {
		s.Support = core.SupportClustered
		s.HotFraction = clamp(agreed[0]/P, 1.0/sketchBuckets, 1)
		s.HotMass = clamp(agreed[1]/P, 0, 0.999)
		a.clusteredCalls++
	} else {
		s.Support = core.SupportUniform
		s.HotFraction, s.HotMass = 0, 0
	}
	a.lastSupport = s.Support

	// Link constants: for each level where at least one rank has a usable
	// fit, replace the hand-set α–β with the mean fitted values. The
	// hierarchy is copied before any substitution — the world's own must
	// never be mutated.
	copied := false
	for l := 0; l < depth; l++ {
		okCnt := agreed[3+3*l]
		if okCnt < 1 {
			continue
		}
		alpha, beta := agreed[4+3*l]/okCnt, agreed[5+3*l]/okCnt
		if s.Hier != nil {
			if !copied {
				hc := *s.Hier
				hc.Levels = append([]simnet.Level(nil), hc.Levels...)
				s.Hier = &hc
				copied = true
			}
			s.Hier.Levels[l].Profile = calibrated(s.Hier.Levels[l].Profile, alpha, beta)
			if l == depth-1 {
				s.Profile = calibrated(s.Profile, alpha, beta)
			}
		} else {
			s.Profile = calibrated(s.Profile, alpha, beta)
		}
	}
	return s
}

// calibrated returns base with measured message constants substituted
// (software terms folded into them) and compute terms kept.
func calibrated(base simnet.Profile, alpha, beta float64) simnet.Profile {
	base.Alpha = alpha
	base.BetaPerByte = beta
	base.SoftwareOverhead = 0
	base.SoftwarePerByte = 0
	return base
}

// decide applies hysteresis to the cost model's candidate: the incumbent
// choice is kept unless the candidate has been predicted at least
// SwitchMargin cheaper for HoldCalls consecutive decisions. All inputs
// are agreed quantities, so every rank's state machine transitions
// identically.
func (a *Controller) decide(candAlg core.Algorithm, candLevels int, s core.CostScenario) (core.Algorithm, int, bool, string) {
	if !a.started {
		a.started = true
		a.curAlg, a.curLevels = candAlg, candLevels
		return a.curAlg, a.curLevels, false, ReasonAdopt
	}
	if candAlg == a.curAlg && candLevels == a.curLevels {
		a.pendCount = 0
		return a.curAlg, a.curLevels, false, ReasonKeep
	}
	scCur, scCand := s, s
	scCur.Levels = a.curLevels
	scCand.Levels = candLevels
	tCur := core.PredictSeconds(a.curAlg, scCur)
	tCand := core.PredictSeconds(candAlg, scCand)
	if tCand <= (1-a.cfg.SwitchMargin)*tCur {
		if candAlg == a.pendAlg && candLevels == a.pendLevels {
			a.pendCount++
		} else {
			a.pendAlg, a.pendLevels, a.pendCount = candAlg, candLevels, 1
		}
		if a.pendCount >= a.cfg.HoldCalls {
			a.curAlg, a.curLevels = candAlg, candLevels
			a.pendCount = 0
			a.switches++
			return a.curAlg, a.curLevels, true, ReasonSwitch
		}
		return a.curAlg, a.curLevels, false, ReasonHold
	}
	a.pendCount = 0
	return a.curAlg, a.curLevels, false, ReasonMargin
}

// clamp bounds x to [lo, hi].
func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
