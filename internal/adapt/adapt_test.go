package adapt

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/simnet"
	"repro/internal/stream"
)

// runAdaptive drives one controller per rank over a per-call input
// schedule and returns rank 0's controller for inspection plus the final
// call's per-rank results.
func runAdaptive(t *testing.T, w *comm.World, cfg Config, schedule [][]*stream.Vector) ([]*Controller, []*stream.Vector) {
	t.Helper()
	tr := w.EnableTrace()
	tr.LimitPerRank(4096)
	P := w.Size()
	ctrls := make([]*Controller, P)
	for r := range ctrls {
		ctrls[r] = NewController(cfg)
		ctrls[r].AttachTracer(tr, r)
	}
	results := comm.Run(w, func(p *comm.Proc) *stream.Vector {
		var last *stream.Vector
		for _, inputs := range schedule {
			last = ctrls[p.Rank()].Allreduce(p, inputs[p.Rank()], core.Options{})
		}
		return last
	})
	return ctrls, results
}

// scheduleOf builds a deterministic call schedule: calls entries of P
// vectors each, with per-call non-zero count and pattern from the
// callbacks.
func scheduleOf(seed int64, n, P, calls int, kAt func(call int) int, patternAt func(call int) string) [][]*stream.Vector {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]*stream.Vector, calls)
	for c := range out {
		out[c] = make([]*stream.Vector, P)
		for r := 0; r < P; r++ {
			out[c][r] = genSupport(rng, n, kAt(c), patternAt(c))
		}
	}
	return out
}

// TestAdaptiveMatchesStaticOnStationaryUniform: on a stationary uniform
// workload the adaptive controller must settle on exactly the static
// Auto choice and produce identical reductions.
func TestAdaptiveMatchesStaticOnStationaryUniform(t *testing.T) {
	P, n, k := 8, 1<<16, 1200
	sched := scheduleOf(31, n, P, 6, func(int) int { return k }, func(int) string { return "uniform" })

	w := comm.NewWorld(P, simnet.Aries)
	ctrls, got := runAdaptive(t, w, Config{}, sched)

	wantAlg := core.ChooseAuto(core.CostScenario{N: n, P: P, K: sched[5][0].NNZ(), Profile: simnet.Aries})
	alg, levels := ctrls[0].Choice()
	if alg != wantAlg || levels != 0 {
		t.Fatalf("adaptive settled on %s@%d, static Auto picks %s", alg, levels, wantAlg)
	}
	if ctrls[0].Support() != core.SupportUniform {
		t.Fatal("uniform workload must keep the uniform support model")
	}

	// Same final-call reduction as the static path.
	ws := comm.NewWorld(P, simnet.Aries)
	want := comm.Run(ws, func(p *comm.Proc) *stream.Vector {
		return core.Allreduce(p, sched[5][p.Rank()], core.Options{})
	})
	for r := range got {
		gd, wd := got[r].ToDense(), want[r].ToDense()
		for i := range gd {
			if math.Float64bits(gd[i]) != math.Float64bits(wd[i]) {
				t.Fatalf("rank %d result differs from static at %d", r, i)
			}
		}
	}
}

// TestAdaptiveDetectsClusteredGateFlip reproduces the ROADMAP scenario
// the subsystem exists for: clustered inputs near the δ gate, where the
// uniform worst case routes Auto to the dense-result family although the
// actual union stays sparse. The controller must detect the clustering
// and settle on a sparse-result algorithm.
func TestAdaptiveDetectsClusteredGateFlip(t *testing.T) {
	P, n, k := 16, 1<<16, 5000
	sched := scheduleOf(37, n, P, 8, func(int) int { return k }, func(int) string { return "clustered" })

	staticAlg := core.ChooseAuto(core.CostScenario{N: n, P: P, K: k, Profile: simnet.Aries})
	if staticAlg != core.DSARSplitAllgather {
		t.Fatalf("precondition: static uniform Auto should pick the dense family here, got %s", staticAlg)
	}

	w := comm.NewWorld(P, simnet.Aries)
	ctrls, results := runAdaptive(t, w, Config{}, sched)
	alg, _ := ctrls[0].Choice()
	if alg != core.SSARRecDouble && alg != core.SSARSplitAllgather {
		t.Fatalf("adaptive should settle on a sparse-result algorithm, got %s", alg)
	}
	if ctrls[0].Support() != core.SupportClustered {
		t.Fatal("controller should have switched to the clustered support model")
	}
	if ctrls[0].ClusteredCalls() == 0 {
		t.Fatal("no decided call used the clustered model")
	}

	// Correctness: the adaptive result equals the chained reference up to
	// summation order (recursive doubling folds in tree order).
	ref := sched[len(sched)-1][0].Clone()
	for _, v := range sched[len(sched)-1][1:] {
		ref.Add(v)
	}
	rd, gd := ref.ToDense(), results[0].ToDense()
	for i := range rd {
		if math.Abs(rd[i]-gd[i]) > 1e-9*(1+math.Abs(rd[i])) {
			t.Fatalf("adaptive result differs from reference at %d: %v vs %v", i, gd[i], rd[i])
		}
	}
}

// TestHysteresisRampBounded: a monotonic density ramp crossing several
// decision regimes must produce a bounded number of switches — each
// regime boundary is crossed once, with no thrash at the boundaries.
func TestHysteresisRampBounded(t *testing.T) {
	P, n, calls := 8, 1<<16, 48
	kAt := func(c int) int {
		// Exponential ramp 64 → ~26k: traverses rec-double, split
		// allgather, and the dense-regime DSAR.
		return int(64 * math.Pow(1.14, float64(c)))
	}
	sched := scheduleOf(41, n, P, calls, kAt, func(int) string { return "uniform" })
	w := comm.NewWorld(P, simnet.Aries)
	ctrls, _ := runAdaptive(t, w, Config{}, sched)

	if sw := ctrls[0].Switches(); sw == 0 || sw > 4 {
		t.Fatalf("ramp should switch a small positive number of times, got %d", sw)
	}
	alg, _ := ctrls[0].Choice()
	if alg != core.DSARSplitAllgather {
		t.Fatalf("ramp should end in the dense regime, got %s", alg)
	}
	t.Logf("ramp: %d switches, final %s", ctrls[0].Switches(), alg)
}

// TestHysteresisStepConverges: a step change in the workload must move
// the choice within HoldCalls+1 decided calls and then hold it — and the
// controllers on every rank must agree call by call.
func TestHysteresisStepConverges(t *testing.T) {
	P, n := 8, 1<<16
	kLow, kHigh := 200, 24000 // sparse-regime vs dense-regime shapes
	const step, calls = 6, 16
	kAt := func(c int) int {
		if c < step {
			return kLow
		}
		return kHigh
	}
	sched := scheduleOf(43, n, P, calls, kAt, func(int) string { return "uniform" })

	tr := comm.NewWorld(P, simnet.Aries)
	cfg := Config{}.withDefaults()
	ctrls := make([]*Controller, P)
	for r := range ctrls {
		ctrls[r] = NewController(cfg)
	}
	type choice struct {
		alg core.Algorithm
		lv  int
	}
	// Pre-allocated so each rank only ever touches its own slot.
	perCall := make([][]choice, calls)
	for c := range perCall {
		perCall[c] = make([]choice, P)
	}
	comm.Run(tr, func(p *comm.Proc) any {
		for c := 0; c < calls; c++ {
			ctrls[p.Rank()].Allreduce(p, sched[c][p.Rank()], core.Options{})
			alg, lv := ctrls[p.Rank()].Choice()
			perCall[c][p.Rank()] = choice{alg, lv}
		}
		return nil
	})

	for c := 0; c < calls; c++ {
		for r := 1; r < P; r++ {
			if perCall[c][r] != perCall[c][0] {
				t.Fatalf("call %d: rank %d chose %v, rank 0 chose %v — ranks must agree",
					c, r, perCall[c][r], perCall[c][0])
			}
		}
	}
	before := perCall[step-1][0]
	var converged int = -1
	for c := step; c < calls; c++ {
		if perCall[c][0] != before {
			converged = c - step + 1
			break
		}
	}
	if converged < 0 {
		t.Fatal("choice never moved after the step change")
	}
	if converged > cfg.HoldCalls+1 {
		t.Fatalf("converged %d calls after the step, want within HoldCalls+1 = %d", converged, cfg.HoldCalls+1)
	}
	after := perCall[calls-1][0]
	for c := step + converged; c < calls; c++ {
		if perCall[c][0] != after {
			t.Fatalf("choice thrashed after convergence at call %d", c)
		}
	}
	if sw := ctrls[0].Switches(); sw != 1 {
		t.Fatalf("a single step change should produce exactly 1 switch, got %d", sw)
	}
	t.Logf("step converged in %d calls: %v → %v", converged, before.alg, after.alg)
}

// TestAdaptivePinnedAlgorithmPassthrough: a pinned algorithm bypasses the
// decision layer but still runs correctly.
func TestAdaptivePinnedAlgorithmPassthrough(t *testing.T) {
	P, n := 4, 1<<12
	sched := scheduleOf(47, n, P, 1, func(int) int { return 100 }, func(int) string { return "uniform" })
	w := comm.NewWorld(P, simnet.Aries)
	_, results := runAdaptiveWithOpts(t, w, sched, core.Options{Algorithm: core.RingSparse})
	ref := sched[0][0].Clone()
	for _, v := range sched[0][1:] {
		ref.Add(v)
	}
	if !results[0].Equal(ref) {
		t.Fatal("pinned-algorithm result differs from reference")
	}
}

func runAdaptiveWithOpts(t *testing.T, w *comm.World, schedule [][]*stream.Vector, opts core.Options) ([]*Controller, []*stream.Vector) {
	t.Helper()
	P := w.Size()
	ctrls := make([]*Controller, P)
	for r := range ctrls {
		ctrls[r] = NewController(Config{})
	}
	results := comm.Run(w, func(p *comm.Proc) *stream.Vector {
		var last *stream.Vector
		for _, inputs := range schedule {
			last = ctrls[p.Rank()].Allreduce(p, inputs[p.Rank()], opts)
		}
		return last
	})
	return ctrls, results
}

// TestAdaptiveOnHierarchyWorld: the controller must run (and agree) on an
// N-level hierarchy world, picking a hierarchical algorithm with a depth,
// and the calibrator must see per-level samples.
func TestAdaptiveOnHierarchyWorld(t *testing.T) {
	P := 32
	h := simnet.DragonflyLike(4, 4)
	sched := scheduleOf(53, 1<<18, P, 5, func(int) int { return 120 }, func(int) string { return "uniform" })
	w := comm.NewWorldHier(P, h)
	ctrls, results := runAdaptive(t, w, Config{}, sched)

	alg, levels := ctrls[0].Choice()
	if alg != core.HierSSAR {
		t.Fatalf("latency-bound sparse instance on a Dragonfly world should pick HierSSAR, got %s@%d", alg, levels)
	}
	if levels < 2 {
		t.Fatalf("hierarchical pick should carry a depth >= 2, got %d", levels)
	}
	ref := sched[4][0].Clone()
	for _, v := range sched[4][1:] {
		ref.Add(v)
	}
	if !results[0].Equal(ref) {
		t.Fatal("hierarchy-world adaptive result differs from reference")
	}
	if ctrls[0].Calibrator().Samples(0) == 0 {
		t.Fatal("calibrator should have consumed level-0 transfers")
	}
}
