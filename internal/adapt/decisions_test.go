package adapt

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/simnet"
)

// TestDecisionHistoryStructure drives a drifting workload (uniform →
// clustered) and checks the structured history: one event per decided
// call, reasons drawn from the Reason* constants, the first event an
// adoption, Switched events matching Switches(), and predictions
// populated.
func TestDecisionHistoryStructure(t *testing.T) {
	P, n := 8, 1<<16
	calls := 10
	sched := scheduleOf(47, n, P, calls,
		func(int) int { return 3000 },
		func(c int) string {
			if c < 4 {
				return "uniform"
			}
			return "clustered"
		})
	w := comm.NewWorldTopo(P, simnet.Topology{RanksPerNode: 4,
		Intra: simnet.NVLinkLike, Inter: simnet.Aries})
	ctrls, _ := runAdaptive(t, w, Config{}, sched)

	for r, c := range ctrls {
		events := c.Decisions()
		if len(events) != calls {
			t.Fatalf("rank %d: %d events, want %d", r, len(events), calls)
		}
		switched := 0
		for i, e := range events {
			if e.Call != i {
				t.Fatalf("rank %d event %d: Call=%d", r, i, e.Call)
			}
			if e.Bucket != -1 {
				t.Fatalf("whole-call decision carries bucket %d", e.Bucket)
			}
			if e.PredictedSeconds <= 0 {
				t.Fatalf("event %d: non-positive prediction %g", i, e.PredictedSeconds)
			}
			switch e.Reason {
			case ReasonAdopt, ReasonKeep, ReasonHold, ReasonSwitch, ReasonMargin:
			default:
				t.Fatalf("event %d: unknown reason %q", i, e.Reason)
			}
			if (e.Reason == ReasonSwitch) != e.Switched {
				t.Fatalf("event %d: reason %q vs Switched=%v", i, e.Reason, e.Switched)
			}
			if e.Switched {
				switched++
			}
		}
		if events[0].Reason != ReasonAdopt {
			t.Fatalf("first event reason = %q, want adopt", events[0].Reason)
		}
		if switched != c.Switches() {
			t.Fatalf("rank %d: %d Switched events vs Switches()=%d", r, switched, c.Switches())
		}
		// Ranks decide in lockstep: every history must match rank 0's.
		for i, e := range events {
			if e != ctrls[0].Decisions()[i] {
				t.Fatalf("rank %d event %d diverges from rank 0: %+v", r, i, e)
			}
		}
	}
}

// TestDecisionEventsReachObs checks the obs consumption: with
// observability enabled, every decision lands as an "adapt:decision"
// instant on the deciding rank's track and the decision counters add up.
func TestDecisionEventsReachObs(t *testing.T) {
	P, n := 4, 1<<14
	calls := 5
	sched := scheduleOf(11, n, P, calls,
		func(int) int { return 800 },
		func(int) string { return "uniform" })
	w := comm.NewWorld(P, simnet.Aries)
	hub := w.EnableObservability()
	ctrls, _ := runAdaptive(t, w, Config{}, sched)

	instants := map[int]int{}
	for _, s := range hub.Spans() {
		if s.Name == "adapt:decision" {
			if !s.Instant {
				t.Fatal("adapt:decision must be an instant")
			}
			instants[s.Rank]++
			var alg, reason bool
			for _, a := range s.Attrs {
				switch a.Key {
				case "alg":
					alg = a.Value != ""
				case "reason":
					reason = a.Value != ""
				}
			}
			if !alg || !reason {
				t.Fatalf("decision instant missing attrs: %+v", s.Attrs)
			}
		}
	}
	for r := 0; r < P; r++ {
		if instants[r] != calls {
			t.Fatalf("rank %d: %d decision instants, want %d", r, instants[r], calls)
		}
	}
	if got := hub.Metrics().Counter("adapt.decisions").Value(); got != int64(P*calls) {
		t.Fatalf("adapt.decisions = %d, want %d", got, P*calls)
	}
	var switches int
	for _, c := range ctrls {
		switches += c.Switches()
	}
	if got := hub.Metrics().Counter("adapt.switches").Value(); got != int64(switches) {
		t.Fatalf("adapt.switches = %d, want %d", got, switches)
	}
}
