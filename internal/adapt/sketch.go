package adapt

import (
	"sort"

	"repro/internal/stream"
)

// sketchBuckets is the resolution of the index-position histogram: the
// dimension space [0, N) is folded into this many equal-width buckets, so
// hot-fraction estimates are quantized to 1/sketchBuckets.
const sketchBuckets = 64

// DefaultMaxSamples caps how many support indices one Observe call
// inspects. Sampling is strided over the (sorted) index slice, so the
// per-call cost is O(DefaultMaxSamples) regardless of k — what keeps the
// sketch's overhead far below the merge it rides along with.
const DefaultMaxSamples = 1024

// DefaultDecay is the EWMA weight of a new observation: estimates track a
// drifting workload with a time constant of a few calls while averaging
// out per-call sampling noise.
const DefaultDecay = 0.25

// ShapeSketch is a cheap, observe-only estimator of the input stream's
// support shape, fed inline with each collective call (stream.Vector.
// Observe). It maintains EWMAs of the observed non-zero count and of a
// hot-set decomposition (HotFraction, HotMass, Divergence) derived from a
// bucketed index-position histogram:
//
//	divergence = max over prefixes j of sorted bucket occupancy of
//	             (mass of top-j buckets) − j/B
//
// the maximal Kolmogorov–Smirnov-style gap between the observed index
// distribution and the uniform one. The maximizing prefix is the
// estimated hot region: its width fraction is HotFraction and its
// occupancy share HotMass — directly the parameters of
// density.ExpectedKClustered. Uniform supports yield divergence near zero
// (sampling noise only, ≈0.1 at 1024 samples over 64 buckets); the
// `clustered` test pattern (10% of the space holding 70% of the mass)
// yields ≈0.6.
//
// A ShapeSketch belongs to one rank and is not safe for concurrent use.
// The zero value is NOT ready; construct with NewShapeSketch.
type ShapeSketch struct {
	maxSamples int
	decay      float64

	calls int
	k     float64 // EWMA of per-call non-zero count
	dim   int     // dimension of the last observed vector

	hotFrac, hotMass, div float64 // EWMA'd shape estimates

	hist   [sketchBuckets]int32 // per-call scratch, reset each Observe
	sorted [sketchBuckets]int32
}

// NewShapeSketch returns an empty sketch. maxSamples <= 0 takes
// DefaultMaxSamples; decay outside (0, 1] takes DefaultDecay.
func NewShapeSketch(maxSamples int, decay float64) *ShapeSketch {
	if maxSamples <= 0 {
		maxSamples = DefaultMaxSamples
	}
	if decay <= 0 || decay > 1 {
		decay = DefaultDecay
	}
	return &ShapeSketch{maxSamples: maxSamples, decay: decay}
}

// SketchStats is a point-in-time snapshot of the sketch's estimates.
type SketchStats struct {
	// Calls is how many vectors have been observed.
	Calls int
	// K is the EWMA'd per-call non-zero count and Dim the last observed
	// dimension, so K/Dim is the smoothed observed density.
	K   float64
	Dim int
	// HotFraction is the estimated width of the hot region as a fraction
	// of the dimension space, HotMass the support mass it absorbs, and
	// Divergence = HotMass − HotFraction the distance from uniformity
	// (0 ≤ Divergence < 1; uniform supports sit near 0).
	HotFraction, HotMass, Divergence float64
}

// Stats returns the current estimates.
func (s *ShapeSketch) Stats() SketchStats {
	return SketchStats{Calls: s.calls, K: s.k, Dim: s.dim,
		HotFraction: s.hotFrac, HotMass: s.hotMass, Divergence: s.div}
}

// Observe feeds one vector's support into the sketch (strictly read-only;
// see stream.Vector.Observe).
func (s *ShapeSketch) Observe(v *stream.Vector) { v.Observe(s) }

// ObserveSparse implements stream.SupportObserver: a strided sample of
// the sorted index slice updates the position histogram and the EWMAs.
func (s *ShapeSketch) ObserveSparse(n int, idx []int32) {
	if n <= 0 {
		return
	}
	s.dim = n
	k := len(idx)
	if k == 0 {
		s.update(0, 0, 0, 0)
		return
	}
	stride := (k + s.maxSamples - 1) / s.maxSamples
	sampled := (k + stride - 1) / stride
	b := bucketsFor(sampled)
	s.hist = [sketchBuckets]int32{}
	for i := 0; i < k; i += stride {
		s.hist[int(int64(idx[i])*int64(b)/int64(n))]++
	}
	f, m, d := s.decompose(sampled, b)
	s.update(float64(k), f, m, d)
}

// ObserveDense implements stream.SupportObserver: a strided sample of the
// dense array estimates the non-neutral count; the positions of the
// sampled non-neutral entries feed the same histogram. Dense vectors are
// past δ by construction, so the k estimate is what matters — shape
// estimates of a ~full support converge to uniform.
func (s *ShapeSketch) ObserveDense(n int, dns []float64, neutral float64) {
	if n <= 0 {
		return
	}
	s.dim = n
	stride := (n + s.maxSamples - 1) / s.maxSamples
	s.hist = [sketchBuckets]int32{}
	sampled, nonNeutral := 0, 0
	for i := 0; i < n; i += stride {
		sampled++
		if dns[i] != neutral {
			nonNeutral++
		}
	}
	if nonNeutral == 0 {
		s.update(0, 0, 0, 0)
		return
	}
	b := bucketsFor(nonNeutral)
	for i := 0; i < n; i += stride {
		if dns[i] != neutral {
			s.hist[int(int64(i)*int64(b)/int64(n))]++
		}
	}
	kEst := float64(n) * float64(nonNeutral) / float64(sampled)
	f, m, d := s.decompose(nonNeutral, b)
	s.update(kEst, f, m, d)
}

// bucketsFor picks the histogram resolution for one call: enough samples
// per bucket (≥ 8 on average) that the sorted-prefix divergence of a
// *uniform* support stays near zero instead of being inflated by Poisson
// noise, clamped to [8, sketchBuckets].
func bucketsFor(sampled int) int {
	b := sketchBuckets
	for b > 8 && sampled < 8*b {
		b /= 2
	}
	return b
}

// decompose turns the per-call histogram (b live buckets) into
// (hotFraction, hotMass, divergence): buckets are sorted by occupancy
// descending and the prefix maximizing mass−width is the hot region.
func (s *ShapeSketch) decompose(sampled, b int) (hotFrac, hotMass, div float64) {
	s.sorted = s.hist
	buckets := s.sorted[:b]
	sort.Slice(buckets, func(i, j int) bool { return buckets[i] > buckets[j] })
	cum := 0
	bestJ, bestMass, bestDiv := 1, 0.0, -1.0
	for j := 1; j <= b; j++ {
		cum += int(buckets[j-1])
		mass := float64(cum) / float64(sampled)
		if d := mass - float64(j)/float64(b); d > bestDiv {
			bestJ, bestMass, bestDiv = j, mass, d
		}
	}
	if bestDiv < 0 {
		bestDiv = 0
	}
	return float64(bestJ) / float64(b), bestMass, bestDiv
}

// update folds one call's estimates into the EWMAs.
func (s *ShapeSketch) update(k, hotFrac, hotMass, div float64) {
	if s.calls == 0 {
		s.k, s.hotFrac, s.hotMass, s.div = k, hotFrac, hotMass, div
	} else {
		s.k += s.decay * (k - s.k)
		s.hotFrac += s.decay * (hotFrac - s.hotFrac)
		s.hotMass += s.decay * (hotMass - s.hotMass)
		s.div += s.decay * (div - s.div)
	}
	s.calls++
}
