package adapt

import (
	"math/rand"
	"testing"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/simnet"
	"repro/internal/stream"
)

// TestWallClockLinkFit: on the goroutine backend the trace carries
// measured wall durations, and the calibrator must recover a usable
// affine fit from them — positive per-byte slope, non-negative intercept —
// because the codec round-trip does real per-byte work. Message sizes
// spanning ~100 B to ~4 MB make the slope's sign robust to scheduler
// noise.
func TestWallClockLinkFit(t *testing.T) {
	const P = 4
	w := comm.NewWorld(P, simnet.Aries).UseGoroutineTransport()
	tr := w.EnableTrace()
	big := make([]float64, 1<<19)
	comm.Run(w, func(p *comm.Proc) int {
		rank, n := p.Rank(), p.Size()
		for round := 0; round < 24; round++ {
			var payload []float64
			if round%2 == 0 {
				payload = big
			} else {
				payload = big[:16]
			}
			p.Send((rank+1)%n, round, payload, len(payload)*8)
			p.Recv((rank-1+n)%n, round)
		}
		return 0
	})
	for r := 0; r < P; r++ {
		c := NewLinkCalibrator(r)
		c.ConsumeOwn(tr)
		if got := c.Samples(0); got != 24 {
			t.Fatalf("rank %d: %d samples, want 24", r, got)
		}
		alpha, beta, ok := c.Fit(0)
		if !ok {
			t.Fatalf("rank %d: no usable fit from measured wall durations", r)
		}
		if beta <= 0 || alpha < 0 {
			t.Fatalf("rank %d: fit alpha=%g beta=%g", r, alpha, beta)
		}
		// The measured constants must be substitutable into a profile for
		// the cost model.
		prof, ok := c.CalibratedProfile(simnet.Aries, 0, 8)
		if !ok || prof.BetaPerByte != beta || prof.Alpha != alpha {
			t.Fatalf("rank %d: CalibratedProfile (%v, ok=%v)", r, prof, ok)
		}
	}
}

// TestControllerOnGoroutineTransport runs the full adaptive loop on the
// real backend: sketch → measured-scenario agreement → ChooseAutoLevels →
// hysteresis → collective, with link calibration warming up from measured
// transfers. The decision must be a concrete algorithm, all ranks must
// agree on it, and results must equal the static reference.
func TestControllerOnGoroutineTransport(t *testing.T) {
	const (
		P = 8
		n = 1 << 14
		k = 400
	)
	w := comm.NewWorld(P, simnet.Aries).UseGoroutineTransport()
	tr := w.EnableTrace()
	controllers := make([]*Controller, P)
	for r := range controllers {
		controllers[r] = NewController(Config{})
		controllers[r].AttachTracer(tr, r)
	}
	rng := rand.New(rand.NewSource(21))
	inputs := make([]*stream.Vector, P)
	for r := range inputs {
		idx := rng.Perm(n)[:k]
		sortInts(idx)
		ii := make([]int32, k)
		vv := make([]float64, k)
		for i, ix := range idx {
			ii[i] = int32(ix)
			vv[i] = float64(1+rng.Intn(8)) / 8
		}
		inputs[r] = stream.NewSparse(n, ii, vv, stream.OpSum)
	}

	static := comm.Run(w, func(p *comm.Proc) []float64 {
		return core.Allreduce(p, inputs[p.Rank()], core.Options{Algorithm: core.SSARSplitAllgather}).ToDense()
	})
	for call := 0; call < 4; call++ {
		results := comm.Run(w, func(p *comm.Proc) []float64 {
			a := controllers[p.Rank()]
			return a.Allreduce(p, inputs[p.Rank()], core.Options{Algorithm: core.Auto}).ToDense()
		})
		for r := range results {
			for i := range results[r] {
				if results[r][i] != static[0][i] {
					t.Fatalf("call %d rank %d coord %d: adaptive %g, static %g", call, r, i, results[r][i], static[0][i])
				}
			}
		}
	}
	alg0, lvl0 := controllers[0].Choice()
	if alg0 == core.Auto {
		t.Fatalf("controller never resolved Auto")
	}
	for r := 1; r < P; r++ {
		alg, lvl := controllers[r].Choice()
		if alg != alg0 || lvl != lvl0 {
			t.Fatalf("rank %d decided (%v,%d), rank 0 (%v,%d)", r, alg, lvl, alg0, lvl0)
		}
	}
	// Calibration must have consumed measured samples by the last call.
	if got := controllers[0].Calibrator().Samples(0); got == 0 {
		t.Fatalf("no measured samples consumed")
	}
}

// sortInts sorts ascending.
func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
