package adapt

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/simnet"
	"repro/internal/stream"
)

// bucketSchedule builds calls× P per-layer contribution sets over spans:
// full-dimension sparse vectors with support inside their span and
// *ragged* per-rank non-zero counts — the case that would desynchronize
// bucket decisions if anything in PlanBuckets keyed off local state.
func bucketSchedule(seed int64, n, P, calls int, spans [][2]int) [][][]*stream.Vector {
	rng := rand.New(rand.NewSource(seed))
	out := make([][][]*stream.Vector, calls)
	for c := range out {
		out[c] = make([][]*stream.Vector, P)
		for r := 0; r < P; r++ {
			out[c][r] = make([]*stream.Vector, len(spans))
			for li, sp := range spans {
				span := sp[1] - sp[0]
				k := 1 + rng.Intn(span/2+1)
				seen := map[int32]bool{}
				var idx []int32
				var val []float64
				for len(idx) < k {
					ix := int32(sp[0] + rng.Intn(span))
					if seen[ix] {
						continue
					}
					seen[ix] = true
					idx = append(idx, ix)
					val = append(val, float64(rng.Intn(63)+1)/8)
				}
				out[c][r][li] = stream.NewSparse(n, idx, val, stream.OpSum)
			}
		}
	}
	return out
}

// TestPlanBucketsReplicaConsistent: under ragged per-rank sparsity, every
// rank's PlanBuckets must return the identical per-bucket Options on
// every call (the decisions feed collective tag layouts and program
// order), results must match the sequential reference, and per-bucket
// hysteresis must bound switching.
func TestPlanBucketsReplicaConsistent(t *testing.T) {
	const (
		P     = 8
		n     = 1 << 14
		calls = 6
	)
	spans := [][2]int{{0, 4000}, {4000, 6000}, {6000, 16384}}
	sched := bucketSchedule(8106, n, P, calls, spans)
	bs := core.NewBucketScheduler(spans, 6000) // {2} alone, {0,1} fused
	if bs.NumBuckets() != 2 {
		t.Fatalf("%d buckets, want 2", bs.NumBuckets())
	}

	w := comm.NewWorld(P, simnet.Aries)
	ctrls := make([]*Controller, P)
	for r := range ctrls {
		ctrls[r] = NewController(Config{})
	}
	type callPlan struct {
		plans []core.Options
		sums  []*stream.Vector
	}
	perRank := comm.Run(w, func(p *comm.Proc) []callPlan {
		out := make([]callPlan, calls)
		for c, byRank := range sched {
			contribs := byRank[p.Rank()]
			plans := ctrls[p.Rank()].PlanBuckets(p, bs, contribs, core.Options{})
			sums := bs.Drain(p, bs.Issue(p, contribs, plans))
			out[c] = callPlan{plans: plans, sums: sums}
		}
		return out
	})

	for c := 0; c < calls; c++ {
		for r := 1; r < P; r++ {
			if !reflect.DeepEqual(perRank[0][c].plans, perRank[r][c].plans) {
				t.Fatalf("call %d: rank %d plan %+v differs from rank 0's %+v",
					c, r, perRank[r][c].plans, perRank[0][c].plans)
			}
		}
		for b := 0; b < bs.NumBuckets(); b++ {
			fused := make([]*stream.Vector, P)
			for r := range fused {
				fused[r] = bs.Fuse(b, sched[c][r], nil)
			}
			want := make([]float64, n)
			for _, v := range fused {
				for i, x := range v.ToDense() {
					want[i] += x
				}
			}
			for r := 0; r < P; r++ {
				got := perRank[r][c].sums[b].ToDense()
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("call %d bucket %d rank %d coord %d: got %g want %g",
							c, b, r, i, got[i], want[i])
					}
				}
			}
		}
	}
	if sw := ctrls[0].BucketSwitches(); sw > 2*bs.NumBuckets() {
		t.Errorf("%d bucket switches over %d calls — hysteresis should bound churn", sw, calls)
	}
}

// TestPlanBucketsPinnedAlgorithm: with a pinned non-Auto algorithm and no
// chunk search requested, PlanBuckets must replicate the caller's Options
// untouched; with Chunks=AutoChunks it may only resolve the chunk degree.
func TestPlanBucketsPinnedAlgorithm(t *testing.T) {
	const (
		P = 4
		n = 1 << 12
	)
	spans := [][2]int{{0, 2000}, {2000, 4096}}
	sched := bucketSchedule(8107, n, P, 3, spans)
	bs := core.NewBucketScheduler(spans, 1)

	w := comm.NewWorld(P, simnet.Aries)
	ctrls := make([]*Controller, P)
	for r := range ctrls {
		ctrls[r] = NewController(Config{})
	}
	pinned := core.Options{Algorithm: core.SSARSplitAllgather, Levels: 0}
	auto := pinned
	auto.Chunks = core.AutoChunks
	plans := comm.Run(w, func(p *comm.Proc) [][]core.Options {
		var out [][]core.Options
		for _, byRank := range sched {
			contribs := byRank[p.Rank()]
			out = append(out, ctrls[p.Rank()].PlanBuckets(p, bs, contribs, pinned))
			out = append(out, ctrls[p.Rank()].PlanBuckets(p, bs, contribs, auto))
		}
		return out
	})
	for r, rounds := range plans {
		for i, round := range rounds {
			for b, o := range round {
				if o.Algorithm != core.SSARSplitAllgather {
					t.Fatalf("rank %d round %d bucket %d: algorithm %v, want pinned SSARSplitAllgather", r, i, b, o.Algorithm)
				}
				if i%2 == 0 && o != pinned {
					t.Fatalf("rank %d round %d bucket %d: pinned options mutated: %+v", r, i, b, o)
				}
				if i%2 == 1 && o.Chunks == core.AutoChunks {
					t.Fatalf("rank %d round %d bucket %d: AutoChunks not resolved", r, i, b)
				}
			}
		}
	}
}
