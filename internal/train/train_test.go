package train

import (
	"math"
	"testing"

	"repro/internal/adapt"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/simnet"
	"repro/internal/topk"
)

var testNet = simnet.Profile{Name: "test", Alpha: 1e-6, BetaPerByte: 1e-10,
	GammaPerElem: 1e-10, SparseComputeFactor: 4}

func denseBlobTask(rank, P int) *MLPTask {
	ds := data.SyntheticDense(data.DenseConfig{Rows: 800, Dim: 24, Classes: 4, Sep: 3, Seed: 5})
	return &MLPTask{
		Net:   nn.ResidualMLP(33, 24, 32, 1, 4, 1),
		Shard: ds.Shard(rank, P),
	}
}

func runTraining(t *testing.T, P int, cfg Config, mk func(rank int) Task) [][]Point {
	t.Helper()
	w := comm.NewWorld(P, testNet)
	return comm.Run(w, func(p *comm.Proc) []Point {
		return Run(p, mk(p.Rank()), cfg)
	})
}

func TestDenseTrainingConverges(t *testing.T) {
	P := 4
	hist := runTraining(t, P, Config{
		Method: MethodDense, LR: 0.05, Momentum: 0.9,
		BatchPerNode: 32, Epochs: 6, Seed: 1,
	}, func(rank int) Task { return denseBlobTask(rank, P) })
	final := hist[0][len(hist[0])-1]
	if final.Top1 < 0.9 {
		t.Fatalf("dense final top-1 %g, want ≥0.9", final.Top1)
	}
	if final.Loss >= hist[0][0].Loss {
		t.Fatal("loss did not decrease")
	}
}

func TestTopKTrainingConverges(t *testing.T) {
	P := 4
	hist := runTraining(t, P, Config{
		Method: MethodTopK, LR: 0.05 / 4, // Algorithm 1 applies the sum
		BatchPerNode: 32, Epochs: 8,
		Bucket: 512, K: 16, Algorithm: core.SSARRecDouble, Seed: 1,
	}, func(rank int) Task { return denseBlobTask(rank, P) })
	final := hist[0][len(hist[0])-1]
	if final.Top1 < 0.85 {
		t.Fatalf("TopK final top-1 %g, want ≥0.85", final.Top1)
	}
}

func TestQuantizedTopKSGDConvergence(t *testing.T) {
	// Theorem 4.1 empirical check: Quantized TopK SGD on a smooth
	// non-convex objective (the MLP) must drive the loss down and reach
	// accuracy comparable to dense training (Figure 4's finding: within
	// ~1%). We allow a modest gap on this small instance.
	P := 4
	dense := runTraining(t, P, Config{
		Method: MethodDense, LR: 0.05, BatchPerNode: 32, Epochs: 8, Seed: 2,
	}, func(rank int) Task { return denseBlobTask(rank, P) })
	quantized := runTraining(t, P, Config{
		Method: MethodTopK, LR: 0.05 / 4, BatchPerNode: 32, Epochs: 8,
		Bucket: 512, K: 16, QuantBits: 4,
		Algorithm: core.DSARSplitAllgather, Seed: 2,
	}, func(rank int) Task { return denseBlobTask(rank, P) })
	d := dense[0][len(dense[0])-1]
	q := quantized[0][len(quantized[0])-1]
	if q.Top1 < d.Top1-0.08 {
		t.Fatalf("quantized TopK top-1 %g vs dense %g: gap too large", q.Top1, d.Top1)
	}
	if q.Loss >= quantized[0][0].Loss {
		t.Fatal("quantized TopK loss did not decrease")
	}
}

func TestTopKSendsFarFewerBytes(t *testing.T) {
	// §8.3: the ATIS LSTM's 80MB/step full-precision exchange shrinks to
	// <0.5MB with TopK. Check the per-rank payload ratio here.
	P := 4
	dense := runTraining(t, P, Config{
		Method: MethodDense, LR: 0.05, BatchPerNode: 16, Epochs: 1,
		StepsPerEpoch: 5, Seed: 3,
	}, func(rank int) Task { return denseBlobTask(rank, P) })
	sparse := runTraining(t, P, Config{
		Method: MethodTopK, LR: 0.0125, BatchPerNode: 16, Epochs: 1,
		StepsPerEpoch: 5, Bucket: 512, K: 4,
		Algorithm: core.SSARRecDouble, Seed: 3,
	}, func(rank int) Task { return denseBlobTask(rank, P) })
	dBytes, sBytes := dense[0][0].BytesSent, sparse[0][0].BytesSent
	if ratio := float64(dBytes) / float64(sBytes); ratio < 20 {
		t.Fatalf("TopK payload reduction %.1fx, want ≥20x (dense %d vs sparse %d bytes)", ratio, dBytes, sBytes)
	}
}

func TestBMUFConvergesAndSyncsLess(t *testing.T) {
	P := 4
	hist := runTraining(t, P, Config{
		Method: MethodBMUF, LR: 0.05, Momentum: 0.9,
		BatchPerNode: 32, Epochs: 8,
		BMUFBlockSteps: 5, BMUFMomentum: 0.5, Seed: 4,
	}, func(rank int) Task { return denseBlobTask(rank, P) })
	final := hist[0][len(hist[0])-1]
	if final.Top1 < 0.85 {
		t.Fatalf("BMUF final top-1 %g, want ≥0.85", final.Top1)
	}
	// BMUF syncs every 5 steps → ~5x less comm time than per-step dense.
	dense := runTraining(t, P, Config{
		Method: MethodDense, LR: 0.05, Momentum: 0.9,
		BatchPerNode: 32, Epochs: 8, Seed: 4,
	}, func(rank int) Task { return denseBlobTask(rank, P) })
	if hist[0][7].CommTime >= dense[0][7].CommTime {
		t.Fatal("BMUF must spend less time communicating than per-step dense SGD")
	}
}

func TestReplicasStayConsistent(t *testing.T) {
	P := 4
	for _, method := range []Method{MethodDense, MethodTopK} {
		cfg := Config{
			Method: method, LR: 0.02, BatchPerNode: 16, Epochs: 2,
			Bucket: 256, K: 8, Algorithm: core.SSARSplitAllgather, Seed: 6,
		}
		hist := runTraining(t, P, cfg, func(rank int) Task { return denseBlobTask(rank, P) })
		for r := 1; r < P; r++ {
			for e := range hist[r] {
				if math.Abs(hist[r][e].Loss-hist[0][e].Loss) > 1e-9 {
					t.Fatalf("method=%s rank=%d epoch=%d: replica loss diverged", method, r, e)
				}
			}
		}
	}
}

func TestLSTMTaskDistributedTraining(t *testing.T) {
	P := 2
	ds := data.SyntheticSequences(data.SequenceConfig{
		Rows: 400, Vocab: 60, Classes: 6, MinLen: 5, MaxLen: 10, Seed: 7,
	})
	hist := runTraining(t, P, Config{
		Method: MethodTopK, LR: 0.5, BatchPerNode: 16, Epochs: 6,
		Bucket: 256, K: 32, Algorithm: core.SSARRecDouble, Seed: 8,
	}, func(rank int) Task {
		return &LSTMTask{
			Model: nn.NewLSTMClassifier(21, 60, 10, 20, 6),
			Shard: ds.Shard(rank, P),
		}
	})
	final := hist[0][len(hist[0])-1]
	first := hist[0][0]
	if final.Loss >= first.Loss {
		t.Fatalf("LSTM TopK loss did not decrease (%g → %g)", first.Loss, final.Loss)
	}
	if final.Top1 < 0.5 {
		t.Fatalf("LSTM TopK top-1 %g, want ≥0.5 on 6 classes", final.Top1)
	}
}

func TestSimulatedTimeScalesWithDevice(t *testing.T) {
	P := 2
	run := func(dev simnet.Device) float64 {
		hist := runTraining(t, P, Config{
			Method: MethodDense, LR: 0.05, BatchPerNode: 32, Epochs: 1,
			StepsPerEpoch: 3, Device: dev, Seed: 9,
		}, func(rank int) Task { return denseBlobTask(rank, P) })
		return hist[0][0].Time
	}
	fast, slow := run(simnet.GPUV100), run(simnet.GPUK80)
	if fast >= slow {
		t.Fatalf("V100 epoch (%g) must be faster than K80 (%g)", fast, slow)
	}
}

func TestEvalSamplesCap(t *testing.T) {
	P := 2
	hist := runTraining(t, P, Config{
		Method: MethodDense, LR: 0.05, BatchPerNode: 16, Epochs: 1,
		StepsPerEpoch: 2, EvalSamples: 10, Seed: 10,
	}, func(rank int) Task { return denseBlobTask(rank, P) })
	if len(hist[0]) != 1 {
		t.Fatal("missing history point")
	}
	if hist[0][0].Top1 < 0 || hist[0][0].Top1 > 1 {
		t.Fatal("accuracy out of range")
	}
}

func TestLayerWiseMatchesFusedConvergence(t *testing.T) {
	// Layer-wise nonblocking exchange selects TopK per layer rather than
	// globally per bucket, so trajectories differ slightly — but both
	// must converge, stay replica-consistent, and move equal payloads for
	// bucketed selection.
	P := 4
	base := Config{
		Method: MethodTopK, LR: 0.0125, BatchPerNode: 32, Epochs: 6,
		Bucket: 256, K: 8, Algorithm: core.SSARRecDouble, Seed: 11,
	}
	fused := runTraining(t, P, base, func(rank int) Task { return denseBlobTask(rank, P) })
	layered := base
	layered.LayerWise = true
	layerwise := runTraining(t, P, layered, func(rank int) Task { return denseBlobTask(rank, P) })

	f := fused[0][len(fused[0])-1]
	l := layerwise[0][len(layerwise[0])-1]
	if l.Top1 < 0.85 {
		t.Fatalf("layer-wise final top-1 %g, want ≥0.85", l.Top1)
	}
	if l.Top1 < f.Top1-0.1 {
		t.Fatalf("layer-wise top-1 %g far below fused %g", l.Top1, f.Top1)
	}
	for r := 1; r < P; r++ {
		if math.Abs(layerwise[r][0].Loss-layerwise[0][0].Loss) > 1e-9 {
			t.Fatal("layer-wise replicas diverged")
		}
	}
}

func TestLayerWiseOverlapReducesCommTime(t *testing.T) {
	// With several layers and a latency-heavy network, overlapping the
	// per-layer collectives must beat running them back to back; compare
	// against a 1-layer (fully fused) model where overlap cannot help.
	P := 4
	cfg := Config{
		Method: MethodTopK, LR: 0.0125, BatchPerNode: 16, Epochs: 1,
		StepsPerEpoch: 4, Bucket: 128, K: 4,
		Algorithm: core.SSARRecDouble, Seed: 13, LayerWise: true,
	}
	hist := runTraining(t, P, cfg, func(rank int) Task { return denseBlobTask(rank, P) })
	fusedCfg := cfg
	fusedCfg.LayerWise = false
	fused := runTraining(t, P, fusedCfg, func(rank int) Task { return denseBlobTask(rank, P) })
	// Layer-wise issues more messages but overlaps them; comm time must
	// stay within 2x of fused (back-to-back would be ~#layers x).
	if hist[0][0].CommTime > 2*fused[0][0].CommTime {
		t.Fatalf("layer-wise comm %g vs fused %g: overlap not effective",
			hist[0][0].CommTime, fused[0][0].CommTime)
	}
}

func TestExtractSpanLeavesOtherLayersUntouched(t *testing.T) {
	// Direct unit check on the span extraction used by layer-wise mode.
	r := topk.NewResidual(10)
	r.Accumulate([]float64{9, 8, 7, 6, 5, 4, 3, 2, 1, 0.5}, 1)
	out := r.ExtractSpan(2, 6, 0, 2)
	if out.NNZ() != 2 || out.Get(2) != 7 || out.Get(3) != 6 {
		t.Fatalf("span extraction wrong: %v", out)
	}
	if r.Norm() == 0 {
		t.Fatal("residual outside the span must remain")
	}
	// Entries outside [2,6) must be untouched.
	check := r.ExtractSpan(0, 2, 0, 2)
	if check.Get(0) != 9 || check.Get(1) != 8 {
		t.Fatal("entries outside the first span were modified")
	}
}

func TestLRSchedules(t *testing.T) {
	step := StepDecay(10, 30, 60)
	if step(0) != 1 || step(29) != 1 {
		t.Fatal("step decay fired early")
	}
	if got := step(30); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("step(30) = %g, want 0.1", got)
	}
	if got := step(60); math.Abs(got-0.01) > 1e-12 {
		t.Fatalf("step(60) = %g, want 0.01", got)
	}
	inv := InvSqrtDecay()
	if inv(0) != 1 {
		t.Fatal("invsqrt(0) != 1")
	}
	if got := inv(3); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("invsqrt(3) = %g, want 0.5", got)
	}
	// Diminishing, as Theorem 4.1 requires.
	for e := 1; e < 50; e++ {
		if inv(e) >= inv(e-1) {
			t.Fatal("invsqrt not diminishing")
		}
	}
}

func TestScheduledTrainingConverges(t *testing.T) {
	P := 4
	hist := runTraining(t, P, Config{
		Method: MethodDense, LR: 0.1, Momentum: 0.9,
		BatchPerNode: 32, Epochs: 8,
		LRSchedule: StepDecay(5, 4), Seed: 15,
	}, func(rank int) Task { return denseBlobTask(rank, P) })
	final := hist[0][len(hist[0])-1]
	if final.Top1 < 0.9 {
		t.Fatalf("scheduled training top-1 %g, want ≥0.9", final.Top1)
	}
}

// TestTopKAdaptiveTraining drives the runtime adaptation layer from the
// TopK SGD loop — the canonical adaptive workload: residual density and
// clustering drift as training progresses. The adaptive run must converge
// like the static one, keep replicas consistent, and actually exercise
// the decision layer (a concrete algorithm held, calibration samples
// consumed).
func TestTopKAdaptiveTraining(t *testing.T) {
	P := 4
	w := comm.NewWorldTopo(P, simnet.Topology{
		RanksPerNode: 2, Intra: simnet.NVLinkLike, Inter: simnet.Aries, NICSerial: 1,
	})
	tr := w.EnableTrace()
	tr.LimitPerRank(4096)
	ctrls := make([]*adapt.Controller, P)
	for r := range ctrls {
		ctrls[r] = adapt.NewController(adapt.Config{})
		ctrls[r].AttachTracer(tr, r)
	}
	hist := comm.Run(w, func(p *comm.Proc) []Point {
		cfg := Config{
			Method: MethodTopK, LR: 0.05 / 4,
			BatchPerNode: 32, Epochs: 8,
			Bucket: 512, K: 16, Algorithm: core.Auto, Seed: 1,
			Adapt: ctrls[p.Rank()],
		}
		return Run(p, denseBlobTask(p.Rank(), P), cfg)
	})
	final := hist[0][len(hist[0])-1]
	if final.Top1 < 0.85 {
		t.Fatalf("adaptive TopK final top-1 %g, want ≥0.85", final.Top1)
	}
	for r := 1; r < P; r++ {
		for e := range hist[r] {
			if hist[r][e].Loss != hist[0][e].Loss || hist[r][e].Top1 != hist[0][e].Top1 {
				t.Fatalf("rank %d epoch %d history diverged from rank 0 — replicas inconsistent", r, e)
			}
		}
	}
	alg, _ := ctrls[0].Choice()
	if alg == core.Auto {
		t.Fatal("controller never resolved a concrete algorithm")
	}
	if ctrls[0].Calibrator().Samples(0) == 0 {
		t.Fatal("no calibration samples consumed during training")
	}
	for r := 1; r < P; r++ {
		algR, lvR := ctrls[r].Choice()
		alg0, lv0 := ctrls[0].Choice()
		if algR != alg0 || lvR != lv0 {
			t.Fatalf("rank %d controller holds %s@%d, rank 0 %s@%d — must agree", r, algR, lvR, alg0, lv0)
		}
	}
}

// TestLayerWiseAdaptiveTraining: the layer-wise path must route through
// the adaptation controller too (Controller.Plan — one fused decision per
// step on the parent proc), not silently fall back to static Auto. The
// run must converge, keep replicas consistent, and leave every rank's
// controller holding the same concrete choice.
func TestLayerWiseAdaptiveTraining(t *testing.T) {
	P := 4
	w := comm.NewWorldTopo(P, simnet.Topology{
		RanksPerNode: 2, Intra: simnet.NVLinkLike, Inter: simnet.Aries, NICSerial: 1,
	})
	tr := w.EnableTrace()
	tr.LimitPerRank(4096)
	ctrls := make([]*adapt.Controller, P)
	for r := range ctrls {
		ctrls[r] = adapt.NewController(adapt.Config{})
		ctrls[r].AttachTracer(tr, r)
	}
	hist := comm.Run(w, func(p *comm.Proc) []Point {
		cfg := Config{
			Method: MethodTopK, LR: 0.0125,
			BatchPerNode: 32, Epochs: 6,
			Bucket: 256, K: 8, Algorithm: core.Auto, Seed: 11,
			LayerWise: true, Adapt: ctrls[p.Rank()],
		}
		return Run(p, denseBlobTask(p.Rank(), P), cfg)
	})
	final := hist[0][len(hist[0])-1]
	if final.Top1 < 0.85 {
		t.Fatalf("layer-wise adaptive final top-1 %g, want ≥0.85", final.Top1)
	}
	for r := 1; r < P; r++ {
		for e := range hist[r] {
			if hist[r][e].Loss != hist[0][e].Loss || hist[r][e].Top1 != hist[0][e].Top1 {
				t.Fatalf("rank %d epoch %d diverged — layer-wise adaptive replicas inconsistent", r, e)
			}
		}
	}
	alg0, lv0 := ctrls[0].Choice()
	if alg0 == core.Auto {
		t.Fatal("layer-wise path bypassed the controller: Auto never resolved")
	}
	for r := 1; r < P; r++ {
		algR, lvR := ctrls[r].Choice()
		if algR != alg0 || lvR != lv0 {
			t.Fatalf("rank %d holds %s@%d, rank 0 %s@%d", r, algR, lvR, alg0, lv0)
		}
	}
}

func TestBucketedTrainingConvergesAndStaysConsistent(t *testing.T) {
	// Bucketed-overlap exchange (Config.BucketCoords) selects TopK per
	// layer like LayerWise but fuses consecutive layers into scheduler
	// buckets; it must converge like the per-layer loop and keep replicas
	// bit-consistent, with and without the adaptive per-bucket planner.
	P := 4
	base := Config{
		Method: MethodTopK, LR: 0.0125, BatchPerNode: 32, Epochs: 6,
		Bucket: 256, K: 8, Algorithm: core.SSARRecDouble, Seed: 11,
		BucketCoords: 200, // fuses the residual MLP's small layers
	}
	run := func(cfg Config, adaptive bool) [][]Point {
		if !adaptive {
			return runTraining(t, P, cfg, func(rank int) Task { return denseBlobTask(rank, P) })
		}
		w := comm.NewWorld(P, testNet)
		return comm.Run(w, func(p *comm.Proc) []Point {
			c := cfg
			c.Algorithm = core.Auto
			c.Chunks = core.AutoChunks
			c.Adapt = adapt.NewController(adapt.Config{})
			return Run(p, denseBlobTask(p.Rank(), P), c)
		})
	}
	for _, adaptive := range []bool{false, true} {
		hist := run(base, adaptive)
		last := hist[0][len(hist[0])-1]
		if last.Top1 < 0.85 {
			t.Fatalf("adaptive=%v: bucketed final top-1 %g, want >=0.85", adaptive, last.Top1)
		}
		for r := 1; r < P; r++ {
			for i := range hist[r] {
				if math.Abs(hist[r][i].Loss-hist[0][i].Loss) > 1e-9 {
					t.Fatalf("adaptive=%v: bucketed replicas diverged at point %d", adaptive, i)
				}
			}
		}
	}
}
