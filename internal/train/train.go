// Package train implements data-parallel distributed training of neural
// networks with SparCML: the Quantized TopK SGD of Algorithm 1 (error
// feedback + per-bucket TopK + sparse allreduce + optional QSGD), the
// fully dense SGD baseline, and the block-momentum (BMUF) baseline used in
// the ASR experiment (§8.4). Wall-clock is simulated: device compute time
// (FLOPs ÷ device rate) plus the communication substrate's α–β virtual
// clock, which is what lets the harness reproduce the paper's
// error-versus-time curves at 16–128 simulated GPUs.
package train

import (
	"math/rand"
	"strconv"

	"repro/internal/adapt"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/quant"
	"repro/internal/scenario"
	"repro/internal/simnet"
	"repro/internal/stream"
	"repro/internal/topk"
)

// Task abstracts a model + local data shard trainable by the distributed
// loop. Implementations wrap the nn package's models (see MLPTask and
// LSTMTask in task.go).
type Task interface {
	// NumSamples returns the local shard size.
	NumSamples() int
	// Params returns the flat parameter buffer (live).
	Params() []float64
	// Grads returns the flat gradient buffer (live).
	Grads() []float64
	// ZeroGrads clears the gradient buffer.
	ZeroGrads()
	// Step runs forward+backward on the given local sample indices,
	// accumulating the batch-averaged gradient; returns the mean loss and
	// top-1 correct count.
	Step(idx []int) (loss float64, correct int)
	// Eval runs forward only; returns summed loss, top-1 and top-5 correct
	// counts over the given indices.
	Eval(idx []int) (loss float64, top1, top5 int)
	// FlopsPerSample models per-sample compute cost (forward+backward).
	FlopsPerSample() float64
}

// Method selects the distributed training algorithm.
type Method int

const (
	// MethodDense is standard synchronous data-parallel SGD with a dense
	// allreduce of the full gradient — the paper's baseline.
	MethodDense Method = iota
	// MethodTopK is SparCML's Quantized TopK SGD (Algorithm 1): error
	// feedback, per-bucket TopK selection, sparse allreduce, optional QSGD
	// quantization of the dense stage.
	MethodTopK
	// MethodBMUF is block-momentum SGD (Chen & Huo): nodes run local SGD
	// for a block of steps, then average models with block-level momentum.
	// The ASR experiment's full-precision baseline.
	MethodBMUF
)

// String names the method.
func (m Method) String() string {
	switch m {
	case MethodDense:
		return "dense"
	case MethodTopK:
		return "topk"
	case MethodBMUF:
		return "bmuf"
	default:
		return "unknown"
	}
}

// Config configures a distributed training run.
type Config struct {
	// Method selects the algorithm.
	Method Method
	// LR is the learning rate. For MethodDense and MethodBMUF the update
	// is LR times the *mean* gradient; for MethodTopK the summed TopK
	// contributions are applied directly, as in Algorithm 1, so LR should
	// be scaled down by roughly the node count relative to the dense value.
	LR float64
	// Momentum applies heavy-ball momentum to the dense and BMUF local
	// updates (TopK follows Algorithm 1, which is plain SGD + feedback).
	Momentum float64
	// BatchPerNode is the per-node minibatch size.
	BatchPerNode int
	// StepsPerEpoch caps the steps per epoch (0 = one full local pass).
	StepsPerEpoch int
	// Epochs is the number of epochs.
	Epochs int
	// Bucket and K select K entries from every Bucket consecutive
	// coordinates (§8.3 uses e.g. 8/512); Bucket 0 selects K globally.
	Bucket, K int
	// QuantBits enables QSGD quantization of the DSAR dense stage (0 off).
	QuantBits int
	// Algorithm is the sparse allreduce algorithm for MethodTopK.
	Algorithm core.Algorithm
	// Device models per-node compute speed (zero value: P100).
	Device simnet.Device
	// BMUFBlockSteps is the number of local steps between BMUF model
	// averages.
	BMUFBlockSteps int
	// BMUFMomentum is the block-level momentum (0.9 typical).
	BMUFMomentum float64
	// EvalSamples caps per-epoch evaluation work (0 = whole shard).
	EvalSamples int
	// DisableErrorFeedback drops the residual after every TopK extraction
	// instead of accumulating it — an ablation of Algorithm 1's error
	// feedback (DESIGN.md §4.6). Convergence degrades without it.
	DisableErrorFeedback bool
	// LayerWise issues one nonblocking sparse allreduce per model layer
	// instead of one fused exchange ("communication is done layer-wise
	// using non-blocking calls", §8.3). Requires the task's model to
	// implement LayerSpans; ignored otherwise.
	LayerWise bool
	// BucketCoords enables bucketed-overlap exchange: per-layer gradients
	// are coalesced into buckets of at least this many span coordinates
	// (core.NewBucketScheduler), issued as nonblocking collectives in
	// backprop order, and drained before the update — DDP-style bucket
	// fusion between the two extremes of one fused exchange and one
	// collective per layer. Implies layer-wise extraction, so like
	// LayerWise it requires the task to implement LayerSpans (ignored
	// otherwise); when both are set, bucketing wins. 0 disables; use
	// core.BucketCoords for the cost-model-derived size.
	BucketCoords int
	// Chunks is forwarded to core.Options.Chunks for MethodTopK's
	// collectives: ≥ 2 pipelines each collective's split phase at that
	// degree, core.AutoChunks lets the cost model pick, and 0 keeps the
	// unchunked schedule.
	Chunks int
	// Adapt, when non-nil, routes MethodTopK's gradient allreduces
	// through the runtime adaptation controller instead of static Auto:
	// each call is sketched, and algorithm/depth are chosen from the
	// measured support shape and calibrated link constants with
	// hysteresis. One controller per rank, all built with the same
	// adapt.Config (the facade's World.EnableAdaptation does this). TopK
	// SGD is the canonical adaptive workload: the residual's density and
	// clustering drift as training progresses, so a static support
	// assumption is wrong for part of every run. The fused path decides
	// per call (adapt.Controller.Allreduce); the layer-wise path decides
	// once per step (adapt.Controller.Plan fuses every layer's sketch on
	// the parent proc and pins one concrete choice for the step's
	// nonblocking calls). Ignored by the dense and BMUF methods.
	Adapt *adapt.Controller
	// LRSchedule, when non-nil, multiplies LR by LRSchedule(epoch) — the
	// paper's Table 3 schedules ("we start with a learning rate of 1,
	// which is divided by 10 at 30 and 60 epochs") and the diminishing
	// rates Theorem 4.1 requires. See StepDecay and InvSqrtDecay.
	LRSchedule func(epoch int) float64
	// Seed drives batch sampling (combined with the rank).
	Seed int64
}

// Point is one epoch of training history. Times are cumulative simulated
// seconds since the start of the run.
type Point struct {
	// Epoch is the zero-based epoch index.
	Epoch int
	// Time is the cumulative simulated wall-clock.
	Time float64
	// CommTime is the cumulative time spent in collectives.
	CommTime float64
	// Loss is the global training loss.
	Loss float64
	// Top1 and Top5 are global training accuracies.
	Top1, Top5 float64
	// BytesSent is this rank's cumulative modeled gradient payload.
	BytesSent int64
}

// Run executes distributed training on this rank and returns the per-epoch
// history (identical on every rank up to float determinism — all replicas
// apply identical updates).
func Run(p *comm.Proc, task Task, cfg Config) []Point {
	if cfg.Device.FlopsPerSec == 0 {
		cfg.Device = simnet.GPUP100
	}
	if cfg.BatchPerNode <= 0 {
		cfg.BatchPerNode = 32
	}
	// Batch sampling draws from the rank's seed-isolated stream: adding
	// ranks or other consumers never perturbs an existing rank's batches.
	rng := scenario.NewPartitionedRNG(scenario.NewKey(cfg.Seed)).Stream(scenario.SubsystemBatch, p.Rank())
	params := task.Params()
	P := p.Size()

	var residual *topk.Residual
	if cfg.Method == MethodTopK {
		residual = topk.NewResidual(len(params))
	}
	var velocity []float64
	if cfg.Momentum > 0 {
		velocity = make([]float64, len(params))
	}
	// BMUF state.
	var blockAnchor, blockVelocity []float64
	if cfg.Method == MethodBMUF {
		blockAnchor = append([]float64(nil), params...)
		blockVelocity = make([]float64, len(params))
	}

	steps := cfg.StepsPerEpoch
	if steps <= 0 {
		steps = (task.NumSamples() + cfg.BatchPerNode - 1) / cfg.BatchPerNode
	}
	// Bucket composition depends only on the static layer spans, so the
	// scheduler is built once; every rank derives the same buckets.
	var sched *core.BucketScheduler
	if cfg.BucketCoords > 0 {
		if spans := layerSpans(task, cfg); spans != nil {
			sched = core.NewBucketScheduler(spans, cfg.BucketCoords)
		}
	}
	var history []Point
	commTime := 0.0
	var bytesSent int64
	globalStep := 0

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		lr := cfg.LR
		if cfg.LRSchedule != nil {
			lr = cfg.LR * cfg.LRSchedule(epoch)
		}
		for s := 0; s < steps; s++ {
			stepStart := p.Now()
			idx := sampleBatch(rng, task.NumSamples(), cfg.BatchPerNode)
			task.ZeroGrads()
			task.Step(idx)
			p.Compute(cfg.Device.ComputeTime(task.FlopsPerSample() * float64(len(idx))))

			switch cfg.Method {
			case MethodDense:
				t0 := p.Now()
				sum := core.AllreduceRabenseifner(p, task.Grads(), stream.OpSum, stream.DefaultValueBytes, p.NextTagBase())
				commTime += p.Now() - t0
				bytesSent += int64(len(sum) * 8)
				applyDense(params, velocity, sum, lr/float64(P), cfg.Momentum)

			case MethodTopK:
				// Algorithm 1: acc ← ε + α∇F; ε ← acc − TopK(acc);
				// g ← allreduce(Q(TopK(acc))); v ← v − g.
				residual.Accumulate(task.Grads(), lr)
				opts := core.Options{Algorithm: cfg.Algorithm, Chunks: cfg.Chunks, Seed: cfg.Seed + int64(globalStep)}
				if cfg.QuantBits > 0 {
					opts.Quant = &quant.Config{Bits: cfg.QuantBits, Bucket: 1024, Norm: quant.NormMax}
				}
				// TopK selection cost: one pass over the parameters.
				p.Compute(cfg.Device.ComputeTime(float64(len(params)) * 2))

				spans := layerSpans(task, cfg)
				if spans != nil {
					// Layer-wise: one nonblocking allreduce per layer,
					// overlapped with each other — or, with a scheduler,
					// one per fused bucket in backprop order. With
					// adaptation enabled the parent proc decides once for
					// the whole step (Controller.Plan fuses every layer's
					// sketch; Controller.PlanBuckets decides per bucket)
					// and the resolved concrete choices are applied to the
					// step's nonblocking calls, so neither path bypasses
					// the controller.
					t0 := p.Now()
					contribs := make([]*stream.Vector, len(spans))
					for si, span := range spans {
						contribs[si] = residual.ExtractSpan(span[0], span[1], cfg.Bucket, cfg.K)
						bytesSent += int64(contribs[si].WireBytes())
					}
					if sched != nil {
						bopts := []core.Options{opts}
						if cfg.Adapt != nil {
							bopts = cfg.Adapt.PlanBuckets(p, sched, contribs, opts)
						}
						for _, sum := range sched.Drain(p, sched.Issue(p, contribs, bopts)) {
							applyUpdateVec(params, sum)
						}
					} else {
						lopts := opts
						if cfg.Adapt != nil {
							lopts = cfg.Adapt.Plan(p, contribs, lopts)
						}
						reqs := make([]*core.Request, len(spans))
						for si := range contribs {
							reqs[si] = core.IAllreduce(p, contribs[si], lopts)
						}
						for _, req := range reqs {
							applyUpdateVec(params, req.Wait(p))
						}
					}
					commTime += p.Now() - t0
				} else {
					contrib := residual.Extract(cfg.Bucket, cfg.K)
					t0 := p.Now()
					var sum *stream.Vector
					if cfg.Adapt != nil {
						sum = cfg.Adapt.Allreduce(p, contrib, opts)
					} else {
						sum = core.Allreduce(p, contrib, opts)
					}
					commTime += p.Now() - t0
					bytesSent += int64(contrib.WireBytes())
					applyUpdateVec(params, sum)
				}
				if cfg.DisableErrorFeedback {
					residual.Reset()
				}

			case MethodBMUF:
				// Local step; sync every BMUFBlockSteps.
				applyDense(params, velocity, task.Grads(), lr, cfg.Momentum)
				if (globalStep+1)%max(1, cfg.BMUFBlockSteps) == 0 {
					t0 := p.Now()
					avg := core.AllreduceRabenseifner(p, params, stream.OpSum, stream.DefaultValueBytes, p.NextTagBase())
					commTime += p.Now() - t0
					bytesSent += int64(len(avg) * 8)
					for i := range avg {
						avg[i] /= float64(P)
					}
					// Block momentum: v ← μv + (avg − anchor); w ← anchor + v.
					for i := range params {
						g := avg[i] - blockAnchor[i]
						blockVelocity[i] = cfg.BMUFMomentum*blockVelocity[i] + g
						params[i] = blockAnchor[i] + blockVelocity[i]
						blockAnchor[i] = params[i]
					}
				}
			}
			if o := p.Obs(); o != nil {
				o.Event("train:step", stepStart, p.Now(),
					obs.Attr{Key: "epoch", Value: strconv.Itoa(epoch)},
					obs.Attr{Key: "step", Value: strconv.Itoa(globalStep)})
			}
			globalStep++
		}
		loss, top1, top5 := globalEval(p, task, cfg)
		if o := p.Obs(); o != nil {
			o.Metrics().Gauge("train.loss").Set(loss)
			o.Metrics().Gauge("train.top1").Set(top1)
		}
		history = append(history, Point{
			Epoch: epoch, Time: p.Now(), CommTime: commTime,
			Loss: loss, Top1: top1, Top5: top5, BytesSent: bytesSent,
		})
	}
	return history
}

// sampleBatch draws a batch of local sample indices with replacement.
func sampleBatch(rng *rand.Rand, n, batch int) []int {
	if batch > n {
		batch = n
	}
	idx := make([]int, batch)
	for i := range idx {
		idx[i] = rng.Intn(n)
	}
	return idx
}

// applyDense applies w ← w − lr·g (with optional momentum) given the
// summed gradient g.
func applyDense(params, velocity, grad []float64, lr, momentum float64) {
	if momentum > 0 {
		for i := range params {
			velocity[i] = momentum*velocity[i] - lr*grad[i]
			params[i] += velocity[i]
		}
		return
	}
	for i := range params {
		params[i] -= lr * grad[i]
	}
}

// applyUpdateVec applies v ← v − g where g already carries the learning
// rate (Algorithm 1's final line).
func applyUpdateVec(params []float64, g *stream.Vector) {
	if g.IsDense() {
		for i, x := range g.ToDense() {
			params[i] -= x
		}
		return
	}
	idx, val := g.Pairs()
	for j, ix := range idx {
		params[ix] -= val[j]
	}
}

// globalEval computes the global training loss/top-1/top-5 by evaluating a
// deterministic local subset on every rank and allreducing the counts.
func globalEval(p *comm.Proc, task Task, cfg Config) (loss, top1, top5 float64) {
	n := task.NumSamples()
	cap := cfg.EvalSamples
	if cap <= 0 || cap > n {
		cap = n
	}
	idx := make([]int, cap)
	for i := range idx {
		idx[i] = i * n / cap
	}
	l, c1, c5 := task.Eval(idx)
	sums := core.AllreduceDense(p, []float64{l, float64(c1), float64(c5), float64(cap)}, stream.OpSum)
	if sums[3] == 0 {
		return 0, 0, 0
	}
	return sums[0] / sums[3], sums[1] / sums[3], sums[2] / sums[3]
}

// Spanner is implemented by tasks whose model exposes per-layer parameter
// spans for layer-wise exchange.
type Spanner interface {
	LayerSpans() [][2]int
}

// layerSpans returns the task's layer spans when layer-wise or bucketed
// exchange is requested and supported, nil otherwise.
func layerSpans(task Task, cfg Config) [][2]int {
	if !cfg.LayerWise && cfg.BucketCoords <= 0 {
		return nil
	}
	s, ok := task.(Spanner)
	if !ok {
		return nil
	}
	return s.LayerSpans()
}

// StepDecay returns a schedule that divides the learning rate by
// `divisor` at each of the given epochs — the paper's ImageNet schedule is
// StepDecay(10, 30, 60).
func StepDecay(divisor float64, at ...int) func(epoch int) float64 {
	return func(epoch int) float64 {
		m := 1.0
		for _, a := range at {
			if epoch >= a {
				m /= divisor
			}
		}
		return m
	}
}

// InvSqrtDecay returns the diminishing schedule 1/√(1+epoch) satisfying
// Theorem 4.1's requirement that "learning rates should be diminishing".
func InvSqrtDecay() func(epoch int) float64 {
	return func(epoch int) float64 {
		return 1 / sqrtFloat(1+float64(epoch))
	}
}

func sqrtFloat(x float64) float64 {
	// Newton iterations avoid importing math for one call site.
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 20; i++ {
		z = (z + x/z) / 2
	}
	return z
}
