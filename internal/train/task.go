package train

import (
	"repro/internal/data"
	"repro/internal/nn"
)

// MLPTask adapts a residual MLP over a dense dataset shard to the Task
// interface (the CIFAR-10 and ImageNet-shaped experiments).
type MLPTask struct {
	Net   *nn.Net
	Shard *data.DenseDataset
}

// NumSamples returns the shard size.
func (t *MLPTask) NumSamples() int { return t.Shard.Rows() }

// Params returns the model's flat parameter buffer.
func (t *MLPTask) Params() []float64 { return t.Net.Params() }

// Grads returns the model's flat gradient buffer.
func (t *MLPTask) Grads() []float64 { return t.Net.Grads() }

// ZeroGrads clears the gradient buffer.
func (t *MLPTask) ZeroGrads() { t.Net.ZeroGrads() }

// Step runs one forward+backward pass over the given shard rows.
func (t *MLPTask) Step(idx []int) (float64, int) {
	x := make([][]float64, len(idx))
	y := make([]int, len(idx))
	for i, s := range idx {
		x[i] = t.Shard.X[s]
		y[i] = t.Shard.Y[s]
	}
	logits := t.Net.Forward(x)
	loss, dLogits, correct := nn.SoftmaxCE(logits, y)
	t.Net.Backward(dLogits)
	return loss, correct
}

// Eval runs forward only, returning summed loss and top-1/top-5 counts.
func (t *MLPTask) Eval(idx []int) (float64, int, int) {
	x := make([][]float64, len(idx))
	y := make([]int, len(idx))
	for i, s := range idx {
		x[i] = t.Shard.X[s]
		y[i] = t.Shard.Y[s]
	}
	logits := t.Net.Forward(x)
	loss, _, top1 := nn.SoftmaxCE(logits, y)
	top5 := nn.TopKCorrect(logits, y, 5)
	return loss * float64(len(idx)), top1, top5
}

// FlopsPerSample delegates to the network.
func (t *MLPTask) FlopsPerSample() float64 { return t.Net.FlopsPerSample() }

// LayerSpans exposes the network's per-layer parameter ranges for
// layer-wise exchange.
func (t *MLPTask) LayerSpans() [][2]int { return t.Net.LayerSpans() }

// LSTMTask adapts an LSTM classifier over a sequence dataset shard to the
// Task interface (the ATIS and ASR-shaped experiments).
type LSTMTask struct {
	Model *nn.LSTMClassifier
	Shard *data.SequenceDataset
	// MeanLen is used for FLOP modeling; computed lazily.
	meanLen float64
}

// NumSamples returns the shard size.
func (t *LSTMTask) NumSamples() int { return t.Shard.Rows() }

// Params returns the model's flat parameter buffer.
func (t *LSTMTask) Params() []float64 { return t.Model.Params() }

// Grads returns the model's flat gradient buffer.
func (t *LSTMTask) Grads() []float64 { return t.Model.Grads() }

// ZeroGrads clears the gradient buffer.
func (t *LSTMTask) ZeroGrads() { t.Model.ZeroGrads() }

// Step runs one forward+backward pass over the given shard sequences.
func (t *LSTMTask) Step(idx []int) (float64, int) {
	seqs := make([][]int, len(idx))
	y := make([]int, len(idx))
	for i, s := range idx {
		seqs[i] = t.Shard.Seqs[s]
		y[i] = t.Shard.Y[s]
	}
	return t.Model.Step(seqs, y)
}

// Eval runs forward only, returning summed loss and top-1/top-5 counts.
func (t *LSTMTask) Eval(idx []int) (float64, int, int) {
	seqs := make([][]int, len(idx))
	y := make([]int, len(idx))
	for i, s := range idx {
		seqs[i] = t.Shard.Seqs[s]
		y[i] = t.Shard.Y[s]
	}
	loss, top1 := t.Model.Eval(seqs, y)
	// Top-5 is not meaningful for the small intent spaces; reuse top-1.
	return loss * float64(len(idx)), top1, top1
}

// FlopsPerSample models compute as flops-per-token times the mean length.
func (t *LSTMTask) FlopsPerSample() float64 {
	if t.meanLen == 0 {
		total := 0
		for _, s := range t.Shard.Seqs {
			total += len(s)
		}
		if t.Shard.Rows() > 0 {
			t.meanLen = float64(total) / float64(t.Shard.Rows())
		} else {
			t.meanLen = 1
		}
	}
	return t.Model.FlopsPerToken() * t.meanLen
}
