package train

import (
	"strconv"
	"testing"

	"repro/internal/comm"
	"repro/internal/core"
)

// TestTrainStepSpans: with observability enabled, every rank's timeline
// carries one "train:step" span per optimizer step with epoch/step
// attributes in step order, and the loss gauge is populated.
func TestTrainStepSpans(t *testing.T) {
	P := 4
	w := comm.NewWorld(P, testNet)
	hub := w.EnableObservability()
	cfg := Config{
		Method: MethodTopK, LR: 0.05 / 4, BatchPerNode: 32,
		Epochs: 2, StepsPerEpoch: 3,
		Bucket: 512, K: 16, Algorithm: core.SSARRecDouble, Seed: 1,
	}
	comm.Run(w, func(p *comm.Proc) []Point {
		return Run(p, denseBlobTask(p.Rank(), P), cfg)
	})

	steps := map[int][]string{}
	for _, s := range hub.Spans() {
		if s.Name != "train:step" {
			continue
		}
		if s.End < s.Start {
			t.Fatalf("negative step span: %+v", s)
		}
		var stepAttr string
		for _, a := range s.Attrs {
			if a.Key == "step" {
				stepAttr = a.Value
			}
		}
		steps[s.Rank] = append(steps[s.Rank], stepAttr)
	}
	for r := 0; r < P; r++ {
		if len(steps[r]) != cfg.Epochs*cfg.StepsPerEpoch {
			t.Fatalf("rank %d: %d step spans, want %d", r, len(steps[r]), cfg.Epochs*cfg.StepsPerEpoch)
		}
		for i, got := range steps[r] {
			if want := strconv.Itoa(i); got != want {
				t.Fatalf("rank %d span %d: step attr %q, want %q", r, i, got, want)
			}
		}
	}
	if hub.Metrics().Gauge("train.loss").Value() <= 0 {
		t.Fatal("train.loss gauge not set")
	}
}
