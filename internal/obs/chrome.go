package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// ChromeEvent is one entry of a Chrome trace-event JSON document
// (the format Perfetto and chrome://tracing load). Complete spans use
// Phase "X" with a microsecond duration, instants use Phase "i" with
// thread scope, and metadata rows use Phase "M".
type ChromeEvent struct {
	// Name is the event label shown on the timeline.
	Name string `json:"name"`
	// Cat is the event category (the span's lane, when not the main
	// lane).
	Cat string `json:"cat,omitempty"`
	// Phase is the trace-event phase: "X", "i" or "M".
	Phase string `json:"ph"`
	// TS is the event timestamp in microseconds.
	TS float64 `json:"ts"`
	// Dur is a complete event's duration in microseconds.
	Dur float64 `json:"dur,omitempty"`
	// PID is the process track: 0 for ranks, 1 for cluster jobs.
	PID int `json:"pid"`
	// TID is the thread track: rank*3+lane for ranks, creation order
	// for named tracks.
	TID int `json:"tid"`
	// Scope is the instant-event scope ("t" for thread).
	Scope string `json:"s,omitempty"`
	// Args carries the span attributes (and metadata names).
	Args map[string]string `json:"args,omitempty"`
}

// ChromeTrace is a full Chrome trace-event JSON document.
type ChromeTrace struct {
	// DisplayTimeUnit is the unit hint for the trace viewer.
	DisplayTimeUnit string `json:"displayTimeUnit,omitempty"`
	// OtherData carries document-level metadata (the hub's clock).
	OtherData map[string]string `json:"otherData,omitempty"`
	// TraceEvents is the event list.
	TraceEvents []ChromeEvent `json:"traceEvents"`
}

// Process IDs of the two track groups in the export.
const (
	// PIDRanks groups the per-rank tracks.
	PIDRanks = 0
	// PIDJobs groups the named (cluster-job) tracks.
	PIDJobs = 1
)

// ChromeTrace renders the hub's recorded spans as a Chrome trace-event
// document: metadata rows first (process and thread names, only for
// lanes that carry events), then rank-track events in rank/record
// order, then named-track events in creation/record order. On the
// simulator clock the output is byte-deterministic.
func (o *Obs) ChromeTrace() ChromeTrace {
	tr := ChromeTrace{
		DisplayTimeUnit: "ms",
		OtherData:       map[string]string{"clock": o.Clock().String()},
	}
	if o == nil {
		return tr
	}

	type key struct{ pid, tid int }
	used := map[key]string{} // tid → thread name, for lanes with events
	var body []ChromeEvent

	emit := func(pid, tid int, s Span) {
		ev := ChromeEvent{
			Name: s.Name, Cat: s.Lane,
			TS:  s.Start * 1e6,
			PID: pid, TID: tid,
		}
		if s.Instant {
			ev.Phase = "i"
			ev.Scope = "t"
		} else {
			ev.Phase = "X"
			ev.Dur = (s.End - s.Start) * 1e6
		}
		if len(s.Attrs) > 0 {
			ev.Args = make(map[string]string, len(s.Attrs))
			for _, a := range s.Attrs {
				ev.Args[a.Key] = a.Value
			}
		}
		body = append(body, ev)
	}

	for _, t := range o.ranks {
		for _, s := range t.snapshot() {
			tid := t.rank*lanesPerRank + laneIndex(s.Lane)
			name := "rank " + strconv.Itoa(t.rank)
			if s.Lane != LaneMain {
				name += " " + s.Lane
			}
			used[key{PIDRanks, tid}] = name
			emit(PIDRanks, tid, s)
		}
	}
	o.mu.Lock()
	named := append([]*Track(nil), o.named...)
	o.mu.Unlock()
	for _, t := range named {
		for _, s := range t.snapshot() {
			used[key{PIDJobs, t.index}] = t.name
			emit(PIDJobs, t.index, s)
		}
	}

	var meta []ChromeEvent
	addMeta := func(name string, pid, tid int, label string) {
		meta = append(meta, ChromeEvent{
			Name: name, Phase: "M", PID: pid, TID: tid,
			Args: map[string]string{"name": label},
		})
	}
	havePID := map[int]bool{}
	for k := range used {
		havePID[k.pid] = true
	}
	if havePID[PIDRanks] {
		addMeta("process_name", PIDRanks, 0, "ranks")
	}
	if havePID[PIDJobs] {
		addMeta("process_name", PIDJobs, 0, "jobs")
	}
	for pid := PIDRanks; pid <= PIDJobs; pid++ {
		maxTID := -1
		for k := range used {
			if k.pid == pid && k.tid > maxTID {
				maxTID = k.tid
			}
		}
		for tid := 0; tid <= maxTID; tid++ {
			if label, ok := used[key{pid, tid}]; ok {
				addMeta("thread_name", pid, tid, label)
			}
		}
	}

	tr.TraceEvents = append(meta, body...)
	return tr
}

// EncodeChromeTrace renders the document as JSON with one event per
// line, so golden diffs stay readable. The encoding is a pure function
// of the value (struct field order, sorted map keys), which is what
// makes the decode∘encode identity hold.
func EncodeChromeTrace(t ChromeTrace) ([]byte, error) {
	var b bytes.Buffer
	b.WriteString("{\n")
	if t.DisplayTimeUnit != "" {
		fmt.Fprintf(&b, "  \"displayTimeUnit\": %q,\n", t.DisplayTimeUnit)
	}
	if len(t.OtherData) > 0 {
		od, err := json.Marshal(t.OtherData)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&b, "  \"otherData\": %s,\n", od)
	}
	b.WriteString("  \"traceEvents\": [\n")
	for i, ev := range t.TraceEvents {
		enc, err := json.Marshal(ev)
		if err != nil {
			return nil, err
		}
		b.WriteString("    ")
		b.Write(enc)
		if i != len(t.TraceEvents)-1 {
			b.WriteByte(',')
		}
		b.WriteByte('\n')
	}
	b.WriteString("  ]\n}\n")
	return b.Bytes(), nil
}

// DecodeChromeTrace parses a Chrome trace-event JSON document produced
// by EncodeChromeTrace (or any compatible encoder).
func DecodeChromeTrace(data []byte) (ChromeTrace, error) {
	var t ChromeTrace
	err := json.Unmarshal(data, &t)
	return t, err
}

// WriteChrome encodes the hub's ChromeTrace to w. A nil hub writes an
// empty (but valid) document.
func (o *Obs) WriteChrome(w io.Writer) error {
	buf, err := EncodeChromeTrace(o.ChromeTrace())
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// WriteMetrics dumps the hub's metrics registry as plain text to w.
func (o *Obs) WriteMetrics(w io.Writer) error {
	return o.Metrics().Write(w)
}
