package obs

import (
	"bytes"
	"strings"
	"testing"
)

func sampleHub() *Obs {
	o := New(2, ClockVirtual)
	o.Rank(0).Begin("phase", 0)
	o.Rank(0).End(1e-6, Attr{Key: "alg", Value: "ssar"})
	o.Rank(0).EventLane(LaneNet, "send", 0, 2e-6,
		Attr{Key: "dst", Value: "1"}, Attr{Key: "bytes", Value: "64"})
	o.Rank(1).EventLane(LaneMerge, "split:merge", 5e-7, 1.5e-6)
	o.Rank(1).Instant("adapt:decision", 1e-6, Attr{Key: "alg", Value: "dsar"})
	o.Named("job-7").Event("job:step", 0, 3e-6)
	return o
}

func TestChromeTraceLayout(t *testing.T) {
	tr := sampleHub().ChromeTrace()
	if tr.DisplayTimeUnit != "ms" || tr.OtherData["clock"] != "virtual" {
		t.Fatalf("header wrong: %+v", tr)
	}
	var meta, complete, instant int
	tids := map[int]string{}
	for _, ev := range tr.TraceEvents {
		switch ev.Phase {
		case "M":
			meta++
			if ev.Name == "thread_name" && ev.PID == PIDRanks {
				tids[ev.TID] = ev.Args["name"]
			}
		case "X":
			complete++
		case "i":
			instant++
			if ev.Scope != "t" {
				t.Fatal("instant missing thread scope")
			}
		}
	}
	// 2 process_name + 4 rank thread lanes + 1 job thread.
	if meta != 7 {
		t.Fatalf("meta events = %d, want 7", meta)
	}
	if complete != 4 || instant != 1 {
		t.Fatalf("complete=%d instant=%d", complete, instant)
	}
	// tid layout: rank*3 + lane index.
	if tids[0] != "rank 0" || tids[1] != "rank 0 net" ||
		tids[3] != "rank 1" || tids[5] != "rank 1 merge" {
		t.Fatalf("thread names wrong: %v", tids)
	}
	// Timestamps are microseconds.
	for _, ev := range tr.TraceEvents {
		if ev.Name == "send" && (ev.TS != 0 || ev.Dur != 2) {
			t.Fatalf("send ts/dur = %g/%g, want 0/2", ev.TS, ev.Dur)
		}
	}
}

func TestChromeDecodeEncodeIdentity(t *testing.T) {
	// decode∘encode must be the identity on encoder output: this is
	// the contract the committed Perfetto golden file relies on.
	first, err := EncodeChromeTrace(sampleHub().ChromeTrace())
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeChromeTrace(first)
	if err != nil {
		t.Fatal(err)
	}
	second, err := EncodeChromeTrace(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("decode∘encode not identity:\n--- first\n%s\n--- second\n%s", first, second)
	}
}

func TestWriteChromeNilHub(t *testing.T) {
	var o *Obs
	var b bytes.Buffer
	if err := o.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeChromeTrace(b.Bytes()); err != nil {
		t.Fatalf("nil hub export not valid JSON: %v", err)
	}
	if !strings.Contains(b.String(), "traceEvents") {
		t.Fatal("nil hub export missing traceEvents")
	}
}

func TestWriteMetrics(t *testing.T) {
	o := New(2, ClockWall)
	o.Metrics().Counter("comm.sends").Add(1, 3)
	var b bytes.Buffer
	if err := o.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != "counter comm.sends = 3\n" {
		t.Fatalf("metrics dump: %q", b.String())
	}
	if o.Clock().String() != "wall" {
		t.Fatal("clock string")
	}
}
