package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// counterShard is one rank's slot of a sharded counter, padded out to a
// cache line so concurrent ranks never false-share.
type counterShard struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a monotonically increasing per-rank-sharded counter. Each
// rank increments its own cache-line-padded shard with one atomic add;
// Value sums the shards. A nil *Counter is a valid disabled counter.
type Counter struct {
	name   string
	shards []counterShard
}

// Add adds delta to rank's shard. Out-of-range ranks fold into shard 0.
func (c *Counter) Add(rank int, delta int64) {
	if c == nil {
		return
	}
	if uint(rank) >= uint(len(c.shards)) {
		rank = 0
	}
	c.shards[rank].v.Add(delta)
}

// Inc adds one to rank's shard.
func (c *Counter) Inc(rank int) { c.Add(rank, 1) }

// Value sums every rank's shard.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var s int64
	for i := range c.shards {
		s += c.shards[i].v.Load()
	}
	return s
}

// ValueOf reads one rank's shard (0 for out-of-range ranks and nil).
func (c *Counter) ValueOf(rank int) int64 {
	if c == nil || uint(rank) >= uint(len(c.shards)) {
		return 0
	}
	return c.shards[rank].v.Load()
}

// Gauge is a last-write-wins float64 metric (fitted α, current loss, …)
// stored as atomic bits. A nil *Gauge is a valid disabled gauge.
type Gauge struct {
	name string
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value reads the last stored value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket per-rank-sharded histogram. Bounds are
// fixed at creation; Observe finds the bucket with a linear scan (the
// bound lists are short) and does one atomic add on the observing
// rank's row. A nil *Histogram is a valid disabled histogram.
type Histogram struct {
	name   string
	bounds []float64
	// counts is ranks rows × (len(bounds)+1) columns, flattened; the
	// last column is the +Inf overflow bucket.
	counts []atomic.Int64
	ranks  int
}

// Observe records v into rank's row. Out-of-range ranks fold into row 0.
func (h *Histogram) Observe(rank int, v float64) {
	if h == nil {
		return
	}
	if uint(rank) >= uint(h.ranks) {
		rank = 0
	}
	b := len(h.bounds)
	for i, bound := range h.bounds {
		if v <= bound {
			b = i
			break
		}
	}
	h.counts[rank*(len(h.bounds)+1)+b].Add(1)
}

// Count sums every bucket of every rank.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var s int64
	for i := range h.counts {
		s += h.counts[i].Load()
	}
	return s
}

// Buckets returns the cumulative-free per-bucket totals summed over
// ranks: element i counts observations ≤ bounds[i], and the final extra
// element counts the +Inf overflow.
func (h *Histogram) Buckets() []int64 {
	if h == nil {
		return nil
	}
	cols := len(h.bounds) + 1
	out := make([]int64, cols)
	for r := 0; r < h.ranks; r++ {
		for b := 0; b < cols; b++ {
			out[b] += h.counts[r*cols+b].Load()
		}
	}
	return out
}

// Bounds returns the histogram's upper bucket bounds.
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return append([]float64(nil), h.bounds...)
}

// DefaultLatencyBounds is the bucket layout used when a histogram is
// created without explicit bounds: decades from 100 ns to 1 s, suited
// to both virtual message latencies and wall-clock step times.
var DefaultLatencyBounds = []float64{
	1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1,
}

// Registry holds a hub's named metrics. Lookup takes a mutex, so
// callers cache the returned handles; the handles themselves are
// lock-free. A nil *Registry is a valid disabled registry: its getters
// return nil handles, which are in turn nil-safe.
type Registry struct {
	ranks int

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates a registry sharded for the given rank count
// (clamped to at least one shard).
func NewRegistry(ranks int) *Registry {
	if ranks < 1 {
		ranks = 1
	}
	return &Registry{
		ranks:    ranks,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns (creating on first use) the named counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{name: name, shards: make([]counterShard, r.ranks)}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating on first use) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating on first use) the named histogram with
// the given upper bucket bounds (DefaultLatencyBounds when none are
// given). Bounds are fixed by the first call; later calls return the
// existing histogram unchanged.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		if len(bounds) == 0 {
			bounds = DefaultLatencyBounds
		}
		h = &Histogram{
			name:   name,
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Int64, r.ranks*(len(bounds)+1)),
			ranks:  r.ranks,
		}
		r.hists[name] = h
	}
	return h
}

// Write dumps every metric as plain text, one line per metric, sorted
// by kind then name so the output is deterministic:
//
//	counter comm.sends = 384
//	gauge train.loss = 0.123
//	histogram comm.wire_seconds count=384 le1e-06=10 … +Inf=0
func (r *Registry) Write(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	cnames := sortedKeys(r.counters)
	gnames := sortedKeys(r.gauges)
	hnames := sortedKeys(r.hists)
	counters, gauges, hists := r.counters, r.gauges, r.hists
	r.mu.Unlock()

	for _, n := range cnames {
		if _, err := fmt.Fprintf(w, "counter %s = %d\n", n, counters[n].Value()); err != nil {
			return err
		}
	}
	for _, n := range gnames {
		if _, err := fmt.Fprintf(w, "gauge %s = %s\n", n,
			strconv.FormatFloat(gauges[n].Value(), 'g', -1, 64)); err != nil {
			return err
		}
	}
	for _, n := range hnames {
		h := hists[n]
		if _, err := fmt.Fprintf(w, "histogram %s count=%d", n, h.Count()); err != nil {
			return err
		}
		buckets := h.Buckets()
		for i, bound := range h.bounds {
			if _, err := fmt.Fprintf(w, " le%s=%d",
				strconv.FormatFloat(bound, 'g', -1, 64), buckets[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, " +Inf=%d\n", buckets[len(buckets)-1]); err != nil {
			return err
		}
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
