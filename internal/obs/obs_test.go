package obs

import (
	"strings"
	"testing"
)

func TestNilSafety(t *testing.T) {
	// Every handle type must be a no-op when nil: the disabled path of
	// an uninstrumented world is built entirely out of nil receivers.
	var o *Obs
	if o.Clock() != ClockVirtual {
		t.Fatal("nil hub clock")
	}
	o.SetClock(ClockWall)
	if o.Rank(0) != nil || o.Named("x") != nil || o.Metrics() != nil {
		t.Fatal("nil hub handed out non-nil handles")
	}
	if o.Spans() != nil {
		t.Fatal("nil hub has spans")
	}
	var tr *Track
	tr.Begin("a", 0)
	tr.End(1)
	tr.Event("b", 0, 1)
	tr.EventLane(LaneNet, "c", 0, 1)
	tr.Instant("d", 0)
	if tr.Spans() != nil || tr.RankID() != -1 || tr.Name() != "" {
		t.Fatal("nil track misbehaved")
	}
	var reg *Registry
	if reg.Counter("c") != nil || reg.Gauge("g") != nil || reg.Histogram("h") != nil {
		t.Fatal("nil registry handed out non-nil handles")
	}
	if err := reg.Write(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	var c *Counter
	c.Add(0, 1)
	c.Inc(0)
	if c.Value() != 0 || c.ValueOf(0) != 0 {
		t.Fatal("nil counter")
	}
	var g *Gauge
	g.Set(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge")
	}
	var h *Histogram
	h.Observe(0, 1)
	if h.Count() != 0 || h.Buckets() != nil || h.Bounds() != nil {
		t.Fatal("nil histogram")
	}
}

func TestSpanStack(t *testing.T) {
	o := New(2, ClockVirtual)
	tr := o.Rank(1)
	tr.Begin("outer", 1.0)
	tr.Begin("inner", 2.0)
	tr.End(3.0, Attr{Key: "k", Value: "v"})
	tr.End(4.0)
	tr.End(5.0) // unmatched: no-op
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != "inner" || spans[0].Start != 2 || spans[0].End != 3 {
		t.Fatalf("inner span wrong: %+v", spans[0])
	}
	if len(spans[0].Attrs) != 1 || spans[0].Attrs[0] != (Attr{Key: "k", Value: "v"}) {
		t.Fatalf("inner attrs wrong: %+v", spans[0].Attrs)
	}
	if spans[1].Name != "outer" || spans[1].Start != 1 || spans[1].End != 4 {
		t.Fatalf("outer span wrong: %+v", spans[1])
	}
	if spans[0].Rank != 1 || spans[1].Rank != 1 {
		t.Fatal("rank not stamped")
	}
}

func TestNamedTracksAndInstants(t *testing.T) {
	o := New(1, ClockVirtual)
	a := o.Named("job-a")
	b := o.Named("job-b")
	if o.Named("job-a") != a {
		t.Fatal("Named not idempotent")
	}
	a.Instant("arrive", 0.5, Attr{Key: "size", Value: "3"})
	b.Event("step", 1, 2)
	o.Rank(0).EventLane(LaneMerge, "m", 0, 1)
	spans := o.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	// Rank tracks come first, then named tracks in creation order.
	if spans[0].Lane != LaneMerge || spans[1].Track != "job-a" || spans[2].Track != "job-b" {
		t.Fatalf("span order wrong: %+v", spans)
	}
	if !spans[1].Instant || spans[1].Start != spans[1].End {
		t.Fatal("instant not marked")
	}
	if spans[1].Rank != -1 {
		t.Fatal("named track rank should be -1")
	}
}

func TestCounterSharding(t *testing.T) {
	r := NewRegistry(4)
	c := r.Counter("sends")
	if r.Counter("sends") != c {
		t.Fatal("Counter not idempotent")
	}
	for rank := 0; rank < 4; rank++ {
		for i := 0; i <= rank; i++ {
			c.Inc(rank)
		}
	}
	c.Add(99, 10) // out of range folds into shard 0
	if got := c.Value(); got != 1+2+3+4+10 {
		t.Fatalf("Value = %d", got)
	}
	if c.ValueOf(0) != 11 || c.ValueOf(3) != 4 || c.ValueOf(99) != 0 {
		t.Fatal("ValueOf wrong")
	}
}

func TestGauge(t *testing.T) {
	g := NewRegistry(1).Gauge("loss")
	g.Set(0.25)
	g.Set(0.125)
	if g.Value() != 0.125 {
		t.Fatalf("gauge = %g", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewRegistry(2).Histogram("lat", 1, 10, 100)
	h.Observe(0, 0.5)  // ≤1
	h.Observe(0, 1)    // ≤1 (inclusive upper bound)
	h.Observe(1, 7)    // ≤10
	h.Observe(1, 1000) // +Inf
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	want := []int64{2, 1, 0, 1}
	got := h.Buckets()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", got, want)
		}
	}
	if b := h.Bounds(); len(b) != 3 || b[1] != 10 {
		t.Fatalf("bounds = %v", b)
	}
}

func TestRegistryWriteDeterministic(t *testing.T) {
	r := NewRegistry(2)
	r.Counter("b.count").Add(0, 2)
	r.Counter("a.count").Add(1, 1)
	r.Gauge("z.gauge").Set(1.5)
	r.Histogram("m.hist", 1, 2).Observe(0, 1.5)
	var sb strings.Builder
	if err := r.Write(&sb); err != nil {
		t.Fatal(err)
	}
	want := "counter a.count = 1\n" +
		"counter b.count = 2\n" +
		"gauge z.gauge = 1.5\n" +
		"histogram m.hist count=1 le1=0 le2=1 +Inf=0\n"
	if sb.String() != want {
		t.Fatalf("dump:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestDisabledHandlesZeroAlloc(t *testing.T) {
	// The disabled path must not allocate: nil receivers short-circuit
	// before any work happens.
	var tr *Track
	var c *Counter
	var h *Histogram
	if n := testing.AllocsPerRun(100, func() {
		tr.Begin("x", 0)
		tr.End(1)
		tr.Instant("y", 2)
		c.Inc(0)
		h.Observe(0, 1)
	}); n != 0 {
		t.Fatalf("disabled path allocated %v times per op", n)
	}
}
