// Package obs is the unified observability layer for the repo: a
// low-overhead metrics registry (per-rank-sharded counters, gauges and
// fixed-bucket histograms), span-based tracing over both the simulator's
// virtual clock and the real transports' wall clock, and exporters —
// Chrome trace-event JSON loadable in Perfetto plus a plain-text metrics
// dump.
//
// The package deliberately imports nothing from the rest of the repo:
// comm, core, adapt, train and cluster all import obs and pass their own
// clock readings in. Every method is nil-safe, so a disabled world (one
// that never called EnableObservability) carries nil handles and each
// instrumentation site costs exactly one pointer comparison and zero
// allocations.
package obs

import "sync"

// Clock says which time base a hub's span timestamps are in. The
// simulator transport records virtual α–β model seconds; the goroutine
// and TCP transports record wall-clock seconds. Exporters label the
// trace with it so a Perfetto timeline is never misread.
type Clock int

const (
	// ClockVirtual marks timestamps from the simulator's virtual α–β
	// cost-model clock (deterministic, reproducible bit for bit).
	ClockVirtual Clock = iota
	// ClockWall marks timestamps from the host's monotonic wall clock
	// (goroutine and TCP transports; measured, not deterministic).
	ClockWall
)

// String names the clock for exporter metadata.
func (c Clock) String() string {
	if c == ClockWall {
		return "wall"
	}
	return "virtual"
}

// Per-rank tracks are drawn with three fixed lanes so that overlapping
// activities never produce malformed nested spans: the main lane holds
// the rank's phase stack, the net lane holds point-to-point sends (whose
// arrival can outlive the local phase), and the merge lane holds the
// pipelined merge stage that physically overlaps the send stage on wall
// transports.
const (
	// LaneMain is the default lane: the rank's own phase stack.
	LaneMain = ""
	// LaneNet is the message lane: one span per send, start→arrival.
	LaneNet = "net"
	// LaneMerge is the overlap lane: pipelined per-chunk merge work.
	LaneMerge = "merge"
)

// laneIndex maps a lane to its fixed slot inside a rank's thread-ID
// block (tid = rank*lanesPerRank + laneIndex in the Chrome export).
func laneIndex(lane string) int {
	switch lane {
	case LaneNet:
		return 1
	case LaneMerge:
		return 2
	default:
		return 0
	}
}

// lanesPerRank is the width of one rank's tid block in the export.
const lanesPerRank = 3

// Attr is one key/value annotation on a span (destination rank, tag,
// chosen algorithm, predicted cost, …). Values are pre-rendered strings
// so the hot path never reflects.
type Attr struct {
	// Key names the annotation.
	Key string
	// Value is the rendered annotation value.
	Value string
}

// Span is one recorded interval (or instant) on a track. Times are in
// seconds on the hub's Clock; End equals Start for instants.
type Span struct {
	// Name is the span's label, e.g. "split:merge" or "job:step".
	Name string
	// Track is the owning track's name ("rank 3" or a job name).
	Track string
	// Lane is the track lane the span belongs to (LaneMain, LaneNet,
	// LaneMerge).
	Lane string
	// Rank is the owning rank, or -1 for named (cluster-job) tracks.
	Rank int
	// Start is the span's begin time in seconds.
	Start float64
	// End is the span's end time in seconds (== Start for instants).
	End float64
	// Instant marks a point event (exported as a Perfetto instant).
	Instant bool
	// Attrs are the span's annotations, in the order they were given.
	Attrs []Attr
}

// openSpan is a stack entry for Begin/End bracket tracing.
type openSpan struct {
	name  string
	start float64
}

// Obs is an observability hub: one per world (or cluster). It owns one
// track per rank, any number of named tracks (cluster jobs), and the
// metrics registry. A nil *Obs is a valid disabled hub: every method is
// a no-op.
type Obs struct {
	clock Clock
	reg   *Registry

	mu    sync.Mutex
	ranks []*Track
	named []*Track
}

// New creates a hub with one track per rank and an empty registry
// sharded for that many ranks. clock declares the time base span
// timestamps will be in.
func New(ranks int, clock Clock) *Obs {
	o := &Obs{clock: clock, reg: NewRegistry(ranks)}
	o.ranks = make([]*Track, ranks)
	for r := range o.ranks {
		o.ranks[r] = &Track{hub: o, rank: r}
	}
	return o
}

// Clock reports the hub's time base. A nil hub reports ClockVirtual.
func (o *Obs) Clock() Clock {
	if o == nil {
		return ClockVirtual
	}
	return o.clock
}

// SetClock re-declares the hub's time base. Worlds call this when a
// transport with a different clock is attached after the hub was
// created (e.g. EnableObservability before UseGoroutineTransport).
func (o *Obs) SetClock(c Clock) {
	if o == nil {
		return
	}
	o.clock = c
}

// Metrics returns the hub's registry (nil for a nil hub — the registry
// is itself nil-safe, so callers may chain without checking).
func (o *Obs) Metrics() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Rank returns rank r's track, or nil if the hub is nil or r is out of
// range.
func (o *Obs) Rank(r int) *Track {
	if o == nil || r < 0 || r >= len(o.ranks) {
		return nil
	}
	return o.ranks[r]
}

// Named returns (creating on first use) the named track for name —
// cluster jobs get one track each. Named tracks keep creation order in
// the export.
func (o *Obs) Named(name string) *Track {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, t := range o.named {
		if t.name == name {
			return t
		}
	}
	t := &Track{hub: o, name: name, rank: -1, index: len(o.named)}
	o.named = append(o.named, t)
	return t
}

// Spans returns every recorded span: rank tracks first (in rank order),
// then named tracks (in creation order), each in the order its spans
// were recorded. On the simulator this order is deterministic.
func (o *Obs) Spans() []Span {
	if o == nil {
		return nil
	}
	var out []Span
	for _, t := range o.ranks {
		out = append(out, t.snapshot()...)
	}
	o.mu.Lock()
	named := append([]*Track(nil), o.named...)
	o.mu.Unlock()
	for _, t := range named {
		out = append(out, t.snapshot()...)
	}
	return out
}

// Track is one timeline: either a rank's (three lanes) or a named
// cluster job's. A nil *Track is a valid disabled track. Tracks are
// mutex-guarded because on wall transports a rank's pipelined merge
// goroutine records concurrently with its send stage.
type Track struct {
	hub   *Obs
	name  string
	rank  int // -1 for named tracks
	index int // creation order among named tracks

	mu    sync.Mutex
	spans []Span
	stack []openSpan
}

// RankID reports which rank owns this track, or -1 for a named track.
// A nil track reports -1.
func (t *Track) RankID() int {
	if t == nil {
		return -1
	}
	return t.rank
}

// Name reports a named track's name ("" for rank tracks and nil).
func (t *Track) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// Metrics returns the owning hub's registry, so an instrumented layer
// holding only a track can also bump counters. Nil-safe all the way
// down: a nil track returns a nil (still usable) registry.
func (t *Track) Metrics() *Registry {
	if t == nil {
		return nil
	}
	return t.hub.Metrics()
}

// Begin opens a span named name at time now on the main lane. Close it
// with End. Begin/End pairs nest like a call stack.
func (t *Track) Begin(name string, now float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.stack = append(t.stack, openSpan{name: name, start: now})
	t.mu.Unlock()
}

// End closes the innermost open span at time now, attaching attrs.
// Calling End with no open span is a no-op.
func (t *Track) End(now float64, attrs ...Attr) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if n := len(t.stack); n > 0 {
		op := t.stack[n-1]
		t.stack = t.stack[:n-1]
		t.appendLocked(Span{Name: op.name, Lane: LaneMain,
			Start: op.start, End: now, Attrs: attrs})
	}
	t.mu.Unlock()
}

// Event records a complete span [start, end] on the main lane.
func (t *Track) Event(name string, start, end float64, attrs ...Attr) {
	t.EventLane(LaneMain, name, start, end, attrs...)
}

// EventLane records a complete span [start, end] on the given lane.
// Sends go on LaneNet, pipelined merge work on LaneMerge.
func (t *Track) EventLane(lane, name string, start, end float64, attrs ...Attr) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.appendLocked(Span{Name: name, Lane: lane,
		Start: start, End: end, Attrs: attrs})
	t.mu.Unlock()
}

// Instant records a point event at time at on the main lane (adaptation
// decisions, job arrivals, …).
func (t *Track) Instant(name string, at float64, attrs ...Attr) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.appendLocked(Span{Name: name, Lane: LaneMain,
		Start: at, End: at, Instant: true, Attrs: attrs})
	t.mu.Unlock()
}

func (t *Track) appendLocked(s Span) {
	s.Rank = t.rank
	s.Track = t.name
	t.spans = append(t.spans, s)
}

// Spans returns a copy of the track's recorded spans in record order.
func (t *Track) Spans() []Span {
	return t.snapshot()
}

func (t *Track) snapshot() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}
